"""Table I model registry with ground-truth performance parameters.

The paper evaluates twelve inference models (Table I).  Because the real
checkpoints cannot run here, each model carries an analytic ground-truth
profile following the paper's latency law (see ``repro.hardware.perfmodel``).
Parameters are calibrated to the paper's reported ratios:

- warm-start GPU speedup ≈ 10× over a 16-core CPU for the translation model
  (TRS), smaller for lighter models (Fig. 2 / §I);
- GPU initialization (CUDA context + weight transfer) is 2.5–3× slower than
  CPU initialization, so cold-start latency on GPU exceeds CPU (Fig. 2);
- CPU inference is noisier than GPU inference (Fig. 11b).

The numbers are in seconds for batch size 1; the latency law extrapolates to
larger batches and other core counts / GPU fractions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.perfmodel import InitTimeParams, LatencyParams, PerfProfile

#: Batching degradation coefficients (λ in Eq. 1/2).  CPU batches suffer more
#: cache pressure than GPU batches.
_CPU_LAM = 1.08
_GPU_LAM = 1.0

#: Network transmission constant γ (seconds) added to every stage.
_NET = 0.02


@dataclass(frozen=True)
class ModelInfo:
    """Catalog entry mirroring one row of Table I."""

    name: str
    full_name: str
    architecture: str
    dataset: str
    field: str
    profile: PerfProfile


def _profile(
    name: str,
    *,
    cpu_alpha: float,
    cpu_beta: float,
    gpu_alpha: float,
    gpu_beta: float,
    init_cpu: float,
    init_gpu: float,
    mem_knee_gb: float,
    max_batch: int = 32,
) -> PerfProfile:
    """Assemble a ground-truth profile with the shared λ/γ constants."""
    return PerfProfile(
        name=name,
        cpu=LatencyParams(_CPU_LAM, cpu_alpha, cpu_beta, _NET),
        gpu=LatencyParams(_GPU_LAM, gpu_alpha, gpu_beta, _NET),
        init_cpu=InitTimeParams(init_cpu, 0.08 * init_cpu),
        init_gpu=InitTimeParams(init_gpu, 0.12 * init_gpu),
        mem_knee_gb=mem_knee_gb,
        max_batch=max_batch,
    )


def _entry(
    name: str,
    full_name: str,
    architecture: str,
    dataset: str,
    field: str,
    **profile_kwargs: float,
) -> ModelInfo:
    return ModelInfo(
        name=name,
        full_name=full_name,
        architecture=architecture,
        dataset=dataset,
        field=field,
        profile=_profile(name, **profile_kwargs),
    )


#: The twelve Table I models.  ``cpu_alpha`` is the parallel compute volume
#: in core-seconds; ``gpu_alpha`` in GPU-fraction-seconds.
MODEL_REGISTRY: dict[str, ModelInfo] = {
    m.name: m
    for m in (
        _entry(
            "IR", "Image Recognition", "ResNet50", "ImageNet", "Image Classification",
            cpu_alpha=1.04, cpu_beta=0.039, gpu_alpha=0.013, gpu_beta=0.0065,
            init_cpu=1.8, init_gpu=5.0, mem_knee_gb=1.5,
        ),
        _entry(
            "FR", "Face Recognition", "FaceNet", "ImageNet", "Image Classification",
            cpu_alpha=0.91, cpu_beta=0.039, gpu_alpha=0.0117, gpu_beta=0.0065,
            init_cpu=1.7, init_gpu=4.8, mem_knee_gb=1.5,
        ),
        _entry(
            "HAP", "Human Activity Pose", "ResNet50", "ImageNet", "Image Classification",
            cpu_alpha=2.08, cpu_beta=0.052, gpu_alpha=0.0221, gpu_beta=0.0078,
            init_cpu=1.9, init_gpu=5.2, mem_knee_gb=1.8,
        ),
        _entry(
            "DB", "DistilBert", "BERT", "SQuAD", "Language Modeling",
            cpu_alpha=0.78, cpu_beta=0.0325, gpu_alpha=0.0104, gpu_beta=0.0052,
            init_cpu=1.6, init_gpu=4.5, mem_knee_gb=1.2,
        ),
        _entry(
            "NER", "Name Entity Recognition", "Flair", "SQuAD", "Language Modeling",
            cpu_alpha=1.3, cpu_beta=0.0455, gpu_alpha=0.0182, gpu_beta=0.0065,
            init_cpu=1.8, init_gpu=4.9, mem_knee_gb=1.6,
        ),
        _entry(
            "TM", "Topic Modeling", "TweetEval", "SQuAD", "Language Modeling",
            cpu_alpha=0.65, cpu_beta=0.0325, gpu_alpha=0.0097, gpu_beta=0.0052,
            init_cpu=1.5, init_gpu=4.4, mem_knee_gb=1.2,
        ),
        _entry(
            "TRS", "Translation", "T5", "SQuAD", "Language Modeling",
            cpu_alpha=6.24, cpu_beta=0.065, gpu_alpha=0.0325, gpu_beta=0.0104,
            init_cpu=2.2, init_gpu=6.0, mem_knee_gb=2.5,
        ),
        _entry(
            "TG", "Text Generation", "GPT2", "SQuAD", "Text Generation",
            cpu_alpha=5.2, cpu_beta=0.065, gpu_alpha=0.0299, gpu_beta=0.0097,
            init_cpu=2.4, init_gpu=6.5, mem_knee_gb=2.8,
        ),
        _entry(
            "SR", "Speech Recognition", "Wav2Vec", "SQuAD", "Audio Processing",
            cpu_alpha=2.34, cpu_beta=0.0585, gpu_alpha=0.0234, gpu_beta=0.0078,
            init_cpu=2.0, init_gpu=5.5, mem_knee_gb=2.0,
        ),
        _entry(
            "TTS", "Text To Speech", "FastSpeech", "SQuAD", "Audio Processing",
            cpu_alpha=1.82, cpu_beta=0.052, gpu_alpha=0.0208, gpu_beta=0.0078,
            init_cpu=1.9, init_gpu=5.3, mem_knee_gb=1.8,
        ),
        _entry(
            "OD", "Object Detection", "YOLOv5", "COCO", "Object Detection",
            cpu_alpha=1.56, cpu_beta=0.0455, gpu_alpha=0.0175, gpu_beta=0.0072,
            init_cpu=1.8, init_gpu=5.1, mem_knee_gb=1.6,
        ),
        _entry(
            "QA", "Question Answering", "Roberta", "SQuAD", "Question Answering",
            cpu_alpha=1.17, cpu_beta=0.039, gpu_alpha=0.0143, gpu_beta=0.0065,
            init_cpu=1.7, init_gpu=4.7, mem_knee_gb=1.4,
        ),
    )
}


def model_names() -> tuple[str, ...]:
    """Short names of all registered models."""
    return tuple(MODEL_REGISTRY)


def get_model(name: str) -> ModelInfo:
    """Look up a Table I model by its short name (e.g. ``"TRS"``)."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known models: {', '.join(MODEL_REGISTRY)}"
        ) from None


def get_profile(name: str) -> PerfProfile:
    """Ground-truth performance profile of a registered model."""
    return get_model(name).profile

"""Run metrics: cost, latency, violations, usage ratios, reinit counts.

Everything the evaluation figures consume is recorded here:

- Fig. 8a — total execution cost (with init/inference/keep-alive split);
- Fig. 8b — the E2E latency distribution;
- Fig. 9a — the CPU:GPU usage (billed cost per backend);
- Fig. 9b — the fraction of stage executions that hit a (re)initialization;
- Fig. 10b/13b/15 — the SLA violation ratio;
- Fig. 14 — per-window pod counts and per-backend instance counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.configs import Backend, HardwareConfig
from repro.metrics.sketch import QuantileSketch, StreamingStats
from repro.simulator.container import Instance
from repro.simulator.invocation import Invocation

#: Recognised record-retention modes (see :class:`RunMetrics.retention`).
RETENTION_MODES = ("full", "sketch")


@dataclass(frozen=True)
class InstanceUsage:
    """Billing summary of one (terminated) instance."""

    function: str
    config: HardwareConfig
    lifetime: float
    init_seconds: float
    busy_seconds: float
    idle_seconds: float
    cost: float
    batches_served: int
    invocations_served: int

    @classmethod
    def from_instance(cls, inst: Instance, now: float) -> "InstanceUsage":
        """Snapshot an instance's billing at ``now``."""
        return cls(
            function=inst.function,
            config=inst.config,
            lifetime=inst.lifetime(now),
            init_seconds=inst.init_seconds(now),
            busy_seconds=inst.busy_seconds,
            idle_seconds=inst.idle_seconds(now),
            cost=inst.cost(now),
            batches_served=inst.batches_served,
            invocations_served=inst.invocations_served,
        )


@dataclass
class BillingFold:
    """Exact streaming fold of :class:`InstanceUsage` billing rows.

    The ``retention="sketch"`` replacement for the full ``instances``
    list: every terminated instance is folded into running sums *in
    termination order*, so every cost figure is **bit-identical** to the
    equivalent ``sum(...)`` over a retained list — only O(#functions)
    state survives, independent of how many instances the run churned.
    """

    total_cost: float = 0.0
    cpu_cost: float = 0.0
    gpu_cost: float = 0.0
    init_cost: float = 0.0
    busy_cost: float = 0.0
    idle_cost: float = 0.0
    instances: int = 0
    #: function -> {instances, lifetime, cost, served} rollup (reporting).
    per_function: dict[str, dict[str, float]] = field(default_factory=dict)

    def fold(self, usage: InstanceUsage) -> None:
        """Fold one terminated instance's billing snapshot in."""
        self.total_cost += usage.cost
        if usage.config.backend is Backend.GPU:
            self.gpu_cost += usage.cost
        else:
            self.cpu_cost += usage.cost
        unit = usage.config.unit_cost
        self.init_cost += usage.init_seconds * unit
        self.busy_cost += usage.busy_seconds * unit
        self.idle_cost += usage.idle_seconds * unit
        self.instances += 1
        row = self.per_function.setdefault(
            usage.function,
            {"instances": 0, "lifetime": 0.0, "cost": 0.0, "served": 0},
        )
        row["instances"] += 1
        row["lifetime"] += usage.lifetime
        row["cost"] += usage.cost
        row["served"] += usage.invocations_served

    def merge(self, other: "BillingFold") -> None:
        """Fold another (shard's) billing fold in.

        Exact in the same sense as :meth:`fold`: every figure is the plain
        float sum of the two partial sums, so folding shard results in a
        fixed order reproduces a single-process fold of the same
        termination stream bit for bit.
        """
        self.total_cost += other.total_cost
        self.cpu_cost += other.cpu_cost
        self.gpu_cost += other.gpu_cost
        self.init_cost += other.init_cost
        self.busy_cost += other.busy_cost
        self.idle_cost += other.idle_cost
        self.instances += other.instances
        for fn, src in other.per_function.items():
            row = self.per_function.setdefault(
                fn, {"instances": 0, "lifetime": 0.0, "cost": 0.0, "served": 0}
            )
            for key, value in src.items():
                row[key] += value

    # ------------------------------------------------------------ snapshots
    def to_state(self) -> tuple:
        """Picklable plain-data state (used by :mod:`repro.sharding`).

        ``per_function`` is flattened to a name-sorted tuple of rows so the
        state is hashable and its equality is independent of dict insertion
        order.
        """
        return (
            self.total_cost,
            self.cpu_cost,
            self.gpu_cost,
            self.init_cost,
            self.busy_cost,
            self.idle_cost,
            self.instances,
            tuple(
                (fn, row["instances"], row["lifetime"], row["cost"], row["served"])
                for fn, row in sorted(self.per_function.items())
            ),
        )

    @classmethod
    def from_state(cls, state: tuple) -> "BillingFold":
        """Rebuild a fold from a :meth:`to_state` snapshot (exact)."""
        (total, cpu, gpu, init, busy, idle, instances, rows) = state
        fold = cls(
            total_cost=total,
            cpu_cost=cpu,
            gpu_cost=gpu,
            init_cost=init,
            busy_cost=busy,
            idle_cost=idle,
            instances=instances,
        )
        for fn, n, lifetime, cost, served in rows:
            fold.per_function[fn] = {
                "instances": n,
                "lifetime": lifetime,
                "cost": cost,
                "served": served,
            }
        return fold


@dataclass
class RunMetrics:
    """Aggregated outcome of one simulation run.

    ``retention`` selects how per-record state is kept:

    - ``"full"`` (default): every completed :class:`Invocation` and every
      :class:`InstanceUsage` billing row is retained — memory grows with
      the trace, every statistic is exact.  The historical behaviour.
    - ``"sketch"``: completed invocations fold into a
      :class:`~repro.metrics.sketch.QuantileSketch` (latency
      distribution) plus exact counters, and billing rows fold into a
      :class:`BillingFold` — memory is O(1) in the arrival count.  Every
      *non-distributional* figure (costs, counts, violation/availability/
      goodput ratios) stays bit-identical to a ``full`` run; only latency
      percentiles and the mean become approximate, within the sketch's
      documented rank-error bound (see ``docs/performance.md``).
    """

    app: str
    policy: str
    sla: float
    retention: str = "full"
    duration: float = 0.0
    instances: list[InstanceUsage] = field(default_factory=list)
    invocations: list[Invocation] = field(default_factory=list)
    unfinished: int = 0
    stage_executions: int = 0
    cold_stage_executions: int = 0
    initializations: int = 0
    failed_initializations: int = 0
    #: Invocations abandoned by the resilience machinery (deadline passed
    #: or retry budget exhausted); disjoint from ``unfinished``.
    timed_out: int = 0
    #: Stage executions requeued after a fault (machine outage or
    #: mid-flight execution failure).
    stage_retries: int = 0
    #: Batches that failed mid-flight (injected execution faults).
    failed_executions: int = 0
    #: Graceful-degradation activations (GPU starvation / crash-loop cap).
    fallbacks: int = 0
    #: GPU launches served by paging a host-resident model in (swap-in)
    #: instead of a full cold initialization.  Deliberately absent from
    #: :meth:`summary` (its key set is pinned by the determinism goldens);
    #: scenario packs and the trace aggregator read the counter directly.
    swap_ins: int = 0
    #: Invocations dropped by the overload plane's bounded-queue shedding
    #: (see :mod:`repro.overload`); disjoint from ``completed`` /
    #: ``unfinished`` / ``timed_out``, extending the conservation identity
    #: to ``admitted == completed + unfinished + timed_out + shed``.
    #: Deliberately absent from :meth:`summary` (its key set is pinned by
    #: the determinism goldens); the overload pack and the trace
    #: aggregator read the counter directly.
    shed: int = 0
    #: Arrivals turned away by token-bucket admission control before they
    #: entered the system (the future HTTP 429); offered load is
    #: ``admitted + rejected``.  Absent from :meth:`summary` like ``shed``.
    rejected: int = 0
    #: Extra arrivals injected on top of the trace (flash crowds, retry
    #: storms).  Offered load is ``len(trace) + injected_arrivals``.  Not
    #: event-reconstructible (injected arrivals emit ordinary ``arrival``
    #: events), so it stays out of the aggregate() equality checks.
    injected_arrivals: int = 0
    #: Highest per-function ready-queue depth observed at enqueue time.
    #: Tracked only when an :class:`~repro.overload.OverloadSpec` is
    #: attached (zero-cost rule); merges across shards by ``max``.
    peak_queue_depth: int = 0
    pod_samples: list[tuple[float, int, int]] = field(default_factory=list)
    arrival_samples: list[tuple[float, int]] = field(default_factory=list)
    # -- sketch-retention state (None / 0 under retention="full") -----------
    #: Completed-invocation count (the sketch-mode stand-in for
    #: ``len(invocations)``; exact).
    completed_count: int = 0
    #: Completions past the SLA (exact; same epsilon as violation_ratio).
    sla_violation_count: int = 0
    #: Completions within the SLA (exact complement of the above).
    within_sla_count: int = 0
    #: Streaming latency distribution (approximate, bounded rank error).
    latency_sketch: QuantileSketch | None = None
    #: Streaming latency moments (exact count/sum/min/max).
    latency_stats: StreamingStats | None = None
    #: Streaming billing fold (exact, replaces the ``instances`` list).
    billing: BillingFold | None = None

    def __post_init__(self) -> None:
        if self.retention not in RETENTION_MODES:
            raise ValueError(
                f"unknown retention mode {self.retention!r}; "
                f"expected one of {RETENTION_MODES}"
            )
        if self.retention == "sketch":
            if self.latency_sketch is None:
                self.latency_sketch = QuantileSketch()
            if self.latency_stats is None:
                self.latency_stats = StreamingStats()
            if self.billing is None:
                self.billing = BillingFold()

    # -- recording (the gateway's counter-mutation points) -------------------
    def record_arrival(self, inv: Invocation) -> None:
        """One invocation arrived.  Retained under ``full``, counted-only
        under ``sketch`` (arrivals are implied by completion counters plus
        ``unfinished``/``timed_out`` conservation)."""
        if self.retention == "full":
            self.invocations.append(inv)

    def record_completion(self, latency: float) -> None:
        """One invocation completed (sketch mode): fold its latency in.

        Full-retention runs never call this — their latency statistics
        are computed from the retained records at query time.
        """
        self.completed_count += 1
        self.latency_sketch.add(latency)
        self.latency_stats.add(latency)
        # Same epsilon as violation_ratio()'s vectorized comparison, so
        # the counters are bit-compatible with the full-retention path.
        if latency > self.sla + 1e-9:
            self.sla_violation_count += 1
        else:
            self.within_sla_count += 1

    def record_instance(self, usage: InstanceUsage) -> None:
        """One instance terminated: retain its billing row, or fold it."""
        if self.retention == "full":
            self.instances.append(usage)
        else:
            self.billing.fold(usage)

    def seal(self, *, duration: float, unfinished: int) -> None:
        """Seal the run: record the horizon and the still-open invocations.

        Extracted from ``Gateway._finalize`` so every finalization path —
        live gateways, trace reconstruction, shard workers — closes a
        metrics object the same way.  Under ``full`` retention the
        unfinished records are dropped from the completed list (they are
        SLA violations by definition and must not pollute latency
        statistics); sketch retention never appended them.
        """
        self.duration = duration
        self.unfinished = unfinished
        if self.retention == "full":
            self.invocations = [
                inv for inv in self.invocations if inv.finished
            ]

    @property
    def n_completed(self) -> int:
        """Completed invocations, uniform across retention modes."""
        if self.retention == "sketch":
            return self.completed_count
        return len(self.invocations)

    # -- cost ----------------------------------------------------------------
    def total_cost(self) -> float:
        """Total dollars billed over the run (Fig. 8a)."""
        if self.retention == "sketch":
            return self.billing.total_cost
        return sum(u.cost for u in self.instances)

    def cost_breakdown(self) -> dict[str, float]:
        """Dollars split into initialization / inference / keep-alive idle."""
        if self.retention == "sketch":
            b = self.billing
            return {
                "init": b.init_cost,
                "inference": b.busy_cost,
                "keepalive": b.idle_cost,
            }
        init = sum(u.init_seconds * u.config.unit_cost for u in self.instances)
        busy = sum(u.busy_seconds * u.config.unit_cost for u in self.instances)
        idle = sum(u.idle_seconds * u.config.unit_cost for u in self.instances)
        return {"init": init, "inference": busy, "keepalive": idle}

    def backend_cost(self, backend: Backend) -> float:
        """Dollars billed on one backend type."""
        if self.retention == "sketch":
            return (
                self.billing.gpu_cost
                if backend is Backend.GPU
                else self.billing.cpu_cost
            )
        return sum(u.cost for u in self.instances if u.config.backend is backend)

    def cpu_gpu_cost_ratio(self) -> float:
        """CPU-to-GPU billed-cost ratio (Fig. 9a; ``inf`` if no GPU usage)."""
        gpu = self.backend_cost(Backend.GPU)
        cpu = self.backend_cost(Backend.CPU)
        return cpu / gpu if gpu > 0 else float("inf")

    # -- latency / SLA ----------------------------------------------------------
    def latencies(self) -> np.ndarray:
        """E2E latencies of completed invocations (full retention only).

        A ``retention="sketch"`` run dropped the per-invocation records by
        design; callers that need distribution shape there must go through
        :meth:`latency_percentile` / ``latency_stats`` instead.
        """
        if self.retention == "sketch":
            raise RuntimeError(
                "latencies() requires retention='full'; a sketch-retention "
                "run keeps only the streaming latency sketch "
                "(use latency_percentile()/latency_stats)"
            )
        return np.array([inv.latency for inv in self.invocations if inv.finished])

    def violation_ratio(self) -> float:
        """Fraction of requests exceeding the SLA (unfinished, timed-out,
        shed and rejected invocations count as violations too)."""
        lost = self.unfinished + self.timed_out + self.shed + self.rejected
        total = self.n_completed + lost
        if total == 0:
            return 0.0
        if self.retention == "sketch":
            violations = self.sla_violation_count + lost
        else:
            lat = self.latencies()
            violations = int((lat > self.sla + 1e-9).sum()) + lost
        return violations / total

    def availability(self) -> float:
        """Fraction of arrivals that completed at all (1.0 on empty runs).

        Under fault injection, invocations lost to deadlines or exhausted
        retry budgets (``timed_out``) and those still open at the horizon
        (``unfinished``) both count against availability; under overload,
        so do shed and admission-rejected ones.
        """
        total = (
            self.n_completed + self.unfinished + self.timed_out
            + self.shed + self.rejected
        )
        if total == 0:
            return 1.0
        return self.n_completed / total

    def goodput(self) -> float:
        """Fraction of arrivals served *within* the SLA (1.0 on empty runs).

        The complement of :meth:`violation_ratio`: completed-on-time
        divided by every arrival, including timed-out, unfinished, shed
        and admission-rejected ones.
        """
        total = (
            self.n_completed + self.unfinished + self.timed_out
            + self.shed + self.rejected
        )
        if total == 0:
            return 1.0
        if self.retention == "sketch":
            within = self.within_sla_count
        else:
            lat = self.latencies()
            within = int((lat <= self.sla + 1e-9).sum())
        return within / total

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100].

        Returns ``nan`` when no invocation completed, matching
        :meth:`summary`'s empty-run convention — a zero-traffic run is a
        legitimate outcome (idle presets, short horizons), not an error.
        Under ``retention="sketch"`` the estimate comes from the streaming
        sketch (exact for small runs, bounded rank error past that).
        """
        if self.retention == "sketch":
            return self.latency_sketch.quantile(q)
        lat = self.latencies()
        if lat.size == 0:
            return float("nan")
        return float(np.percentile(lat, q))

    # -- cold starts -------------------------------------------------------------
    def reinit_fraction(self) -> float:
        """Fraction of stage executions that waited on an initialization
        (Fig. 9b's container-reinitialization measure)."""
        if self.stage_executions == 0:
            return 0.0
        return self.cold_stage_executions / self.stage_executions

    def initializations_per_invocation(self) -> float:
        """Mean container initializations per completed invocation."""
        n = self.n_completed
        return self.initializations / n if n else 0.0

    # -- fleet dynamics ----------------------------------------------------------
    def pods_over_time(self) -> np.ndarray:
        """(time, cpu_pods, gpu_pods) samples per window (Fig. 14)."""
        return np.array(self.pod_samples, dtype=float).reshape(-1, 3)

    def arrivals_over_time(self) -> np.ndarray:
        """(time, arrivals) samples per window (Fig. 14a)."""
        return np.array(self.arrival_samples, dtype=float).reshape(-1, 2)

    def summary(self) -> dict[str, float]:
        """One-line numeric summary used by benches and examples.

        Identical key set across retention modes; under ``sketch`` the
        latency entries come from the streaming accumulators (NaN on a
        zero-completion run, exactly like the empty-array path here).
        """
        if self.retention == "sketch":
            mean_latency = self.latency_stats.mean
        else:
            lat = self.latencies()
            mean_latency = float(lat.mean()) if lat.size else float("nan")
        return {
            "total_cost": self.total_cost(),
            "violation_ratio": self.violation_ratio(),
            "invocations": float(self.n_completed),
            "mean_latency": mean_latency,
            "p50_latency": self.latency_percentile(50),
            "p99_latency": self.latency_percentile(99),
            "reinit_fraction": self.reinit_fraction(),
            "cpu_cost": self.backend_cost(Backend.CPU),
            "gpu_cost": self.backend_cost(Backend.GPU),
            "availability": self.availability(),
            "goodput": self.goodput(),
        }

"""Run metrics: cost, latency, violations, usage ratios, reinit counts.

Everything the evaluation figures consume is recorded here:

- Fig. 8a — total execution cost (with init/inference/keep-alive split);
- Fig. 8b — the E2E latency distribution;
- Fig. 9a — the CPU:GPU usage (billed cost per backend);
- Fig. 9b — the fraction of stage executions that hit a (re)initialization;
- Fig. 10b/13b/15 — the SLA violation ratio;
- Fig. 14 — per-window pod counts and per-backend instance counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.configs import Backend, HardwareConfig
from repro.simulator.container import Instance
from repro.simulator.invocation import Invocation


@dataclass(frozen=True)
class InstanceUsage:
    """Billing summary of one (terminated) instance."""

    function: str
    config: HardwareConfig
    lifetime: float
    init_seconds: float
    busy_seconds: float
    idle_seconds: float
    cost: float
    batches_served: int
    invocations_served: int

    @classmethod
    def from_instance(cls, inst: Instance, now: float) -> "InstanceUsage":
        """Snapshot an instance's billing at ``now``."""
        return cls(
            function=inst.function,
            config=inst.config,
            lifetime=inst.lifetime(now),
            init_seconds=inst.init_seconds(now),
            busy_seconds=inst.busy_seconds,
            idle_seconds=inst.idle_seconds(now),
            cost=inst.cost(now),
            batches_served=inst.batches_served,
            invocations_served=inst.invocations_served,
        )


@dataclass
class RunMetrics:
    """Aggregated outcome of one simulation run."""

    app: str
    policy: str
    sla: float
    duration: float = 0.0
    instances: list[InstanceUsage] = field(default_factory=list)
    invocations: list[Invocation] = field(default_factory=list)
    unfinished: int = 0
    stage_executions: int = 0
    cold_stage_executions: int = 0
    initializations: int = 0
    failed_initializations: int = 0
    #: Invocations abandoned by the resilience machinery (deadline passed
    #: or retry budget exhausted); disjoint from ``unfinished``.
    timed_out: int = 0
    #: Stage executions requeued after a fault (machine outage or
    #: mid-flight execution failure).
    stage_retries: int = 0
    #: Batches that failed mid-flight (injected execution faults).
    failed_executions: int = 0
    #: Graceful-degradation activations (GPU starvation / crash-loop cap).
    fallbacks: int = 0
    pod_samples: list[tuple[float, int, int]] = field(default_factory=list)
    arrival_samples: list[tuple[float, int]] = field(default_factory=list)

    # -- cost ----------------------------------------------------------------
    def total_cost(self) -> float:
        """Total dollars billed over the run (Fig. 8a)."""
        return sum(u.cost for u in self.instances)

    def cost_breakdown(self) -> dict[str, float]:
        """Dollars split into initialization / inference / keep-alive idle."""
        init = sum(u.init_seconds * u.config.unit_cost for u in self.instances)
        busy = sum(u.busy_seconds * u.config.unit_cost for u in self.instances)
        idle = sum(u.idle_seconds * u.config.unit_cost for u in self.instances)
        return {"init": init, "inference": busy, "keepalive": idle}

    def backend_cost(self, backend: Backend) -> float:
        """Dollars billed on one backend type."""
        return sum(u.cost for u in self.instances if u.config.backend is backend)

    def cpu_gpu_cost_ratio(self) -> float:
        """CPU-to-GPU billed-cost ratio (Fig. 9a; ``inf`` if no GPU usage)."""
        gpu = self.backend_cost(Backend.GPU)
        cpu = self.backend_cost(Backend.CPU)
        return cpu / gpu if gpu > 0 else float("inf")

    # -- latency / SLA ----------------------------------------------------------
    def latencies(self) -> np.ndarray:
        """E2E latencies of completed invocations."""
        return np.array([inv.latency for inv in self.invocations if inv.finished])

    def violation_ratio(self) -> float:
        """Fraction of requests exceeding the SLA (unfinished and
        timed-out invocations count as violations too)."""
        total = len(self.invocations) + self.unfinished + self.timed_out
        if total == 0:
            return 0.0
        lat = self.latencies()
        violations = (
            int((lat > self.sla + 1e-9).sum()) + self.unfinished + self.timed_out
        )
        return violations / total

    def availability(self) -> float:
        """Fraction of arrivals that completed at all (1.0 on empty runs).

        Under fault injection, invocations lost to deadlines or exhausted
        retry budgets (``timed_out``) and those still open at the horizon
        (``unfinished``) both count against availability.
        """
        total = len(self.invocations) + self.unfinished + self.timed_out
        if total == 0:
            return 1.0
        return len(self.invocations) / total

    def goodput(self) -> float:
        """Fraction of arrivals served *within* the SLA (1.0 on empty runs).

        The complement of :meth:`violation_ratio`: completed-on-time
        divided by every arrival, including timed-out and unfinished ones.
        """
        total = len(self.invocations) + self.unfinished + self.timed_out
        if total == 0:
            return 1.0
        lat = self.latencies()
        within = int((lat <= self.sla + 1e-9).sum())
        return within / total

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100].

        Returns ``nan`` when no invocation completed, matching
        :meth:`summary`'s empty-run convention — a zero-traffic run is a
        legitimate outcome (idle presets, short horizons), not an error.
        """
        lat = self.latencies()
        if lat.size == 0:
            return float("nan")
        return float(np.percentile(lat, q))

    # -- cold starts -------------------------------------------------------------
    def reinit_fraction(self) -> float:
        """Fraction of stage executions that waited on an initialization
        (Fig. 9b's container-reinitialization measure)."""
        if self.stage_executions == 0:
            return 0.0
        return self.cold_stage_executions / self.stage_executions

    def initializations_per_invocation(self) -> float:
        """Mean container initializations per completed invocation."""
        n = len(self.invocations)
        return self.initializations / n if n else 0.0

    # -- fleet dynamics ----------------------------------------------------------
    def pods_over_time(self) -> np.ndarray:
        """(time, cpu_pods, gpu_pods) samples per window (Fig. 14)."""
        return np.array(self.pod_samples, dtype=float).reshape(-1, 3)

    def arrivals_over_time(self) -> np.ndarray:
        """(time, arrivals) samples per window (Fig. 14a)."""
        return np.array(self.arrival_samples, dtype=float).reshape(-1, 2)

    def summary(self) -> dict[str, float]:
        """One-line numeric summary used by benches and examples."""
        lat = self.latencies()
        return {
            "total_cost": self.total_cost(),
            "violation_ratio": self.violation_ratio(),
            "invocations": float(len(self.invocations)),
            "mean_latency": float(lat.mean()) if lat.size else float("nan"),
            "p50_latency": self.latency_percentile(50),
            "p99_latency": self.latency_percentile(99),
            "reinit_fraction": self.reinit_fraction(),
            "cpu_cost": self.backend_cost(Backend.CPU),
            "gpu_cost": self.backend_cost(Backend.GPU),
            "availability": self.availability(),
            "goodput": self.goodput(),
        }

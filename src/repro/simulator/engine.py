"""Single-application facade over the multi-tenant runtime core.

:class:`ServerlessSimulator` replays an invocation trace against one
application under a pluggable scheduling policy.  It is a thin view of the
general multi-tenant machinery: a private
:class:`~repro.simulator.runtime.Runtime` (clock, event heap, cluster,
billing) carrying exactly one :class:`~repro.simulator.gateway.Gateway`
(queues, directives, instance pools, per-app metrics).  All dispatch,
lifecycle and windowing semantics live in the gateway — see
:mod:`repro.simulator.gateway` for the §VI mechanism rules and
``docs/architecture.md`` for the layering.

The facade keeps the historical surface: gateway state (``pools``,
``queues``, ``directives``, ``pending_launches``, ...) is reachable
directly on the simulator, and ``run()`` returns the single app's
:class:`~repro.simulator.metrics.RunMetrics`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dag.graph import AppDAG
from repro.simulator.cluster import Cluster
from repro.simulator.events import EventQueue
from repro.simulator.gateway import Gateway, SimulationContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.runtime import Runtime
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.faults.plan import FaultPlan
    from repro.overload.spec import OverloadSpec
    from repro.policies.base import Policy
    from repro.telemetry.recorder import Recorder

__all__ = ["ServerlessSimulator", "SimulationContext"]


class ServerlessSimulator:
    """Replays a trace for one application under one policy."""

    def __init__(
        self,
        app: AppDAG,
        trace: Trace,
        policy: "Policy",
        *,
        cluster: Cluster | None = None,
        events: EventQueue | None = None,
        window: float = 1.0,
        drain_timeout: float = 300.0,
        seed: int = 0,
        noisy: bool = True,
        init_failure_rate: float = 0.0,
        gpu_contention: float = 0.0,
        recorder: "Recorder | None" = None,
        faults: "FaultPlan | None" = None,
        overload: "OverloadSpec | None" = None,
        retention: str = "full",
    ) -> None:
        self.runtime = Runtime(
            cluster=cluster,
            events=events,
            drain_timeout=drain_timeout,
            recorder=recorder,
            faults=faults,
            overload=overload,
        )
        self.gateway = self.runtime.add_app(
            app,
            trace,
            policy,
            window=window,
            seed=seed,
            noisy=noisy,
            init_failure_rate=init_failure_rate,
            gpu_contention=gpu_contention,
            retention=retention,
        )

    # Shared mechanism lives on the runtime.
    @property
    def events(self) -> EventQueue:
        """The runtime's event heap (the simulated clock)."""
        return self.runtime.events

    @property
    def cluster(self) -> Cluster:
        """The runtime's shared capacity model."""
        return self.runtime.cluster

    @property
    def drain_timeout(self) -> float:
        """Bounded drain window after the trace horizon."""
        return self.runtime.drain_timeout

    # ------------------------------------------------------------------ run
    def setup(self) -> None:
        """Register the policy and start the arrival / window-tick streams.

        Split from :meth:`run` so callers driving the event loop by hand
        (tests, co-scheduling experiments) can interleave their own events.
        """
        self.gateway.setup()

    def finalize(self) -> RunMetrics:
        """Terminate remaining instances and seal the metrics."""
        return self.gateway.finalize()

    @property
    def open_invocations(self) -> int:
        """Invocations that have arrived but not completed."""
        return self.gateway.open_invocations

    def run(self) -> RunMetrics:
        """Execute the full trace and return the run metrics."""
        return self.runtime.run()[self.gateway.app.name]

    # Everything per-application — pools, queues, directives, metrics,
    # dispatch internals — is gateway state; delegate transparently so the
    # historical single-app surface keeps working.
    def __getattr__(self, name: str):
        try:
            gateway = object.__getattribute__(self, "gateway")
        except AttributeError:
            raise AttributeError(name) from None
        return getattr(gateway, name)

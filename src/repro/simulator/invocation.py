"""Invocations, per-stage execution records, and function directives.

An :class:`Invocation` is one user request to an application; it fans out
into one stage per DAG function.  A :class:`FunctionDirective` is the
policy's standing instruction for one function — which configuration to
launch, how long idle instances may linger (keep-alive), the batch limit,
and a minimum warm fleet size for scale-out.

Invocation ids: every constructor supplies an explicit id — the gateway
draws from its :meth:`Runtime.next_invocation_id
<repro.simulator.runtime.Runtime>` counter, which starts at 0 per
runtime, so a run's ids (and therefore its telemetry traces) are
identical whether the process ran one simulation or a whole grid first,
and serial vs parallel grids trace the same ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.configs import HardwareConfig
from repro.hardware.servicetime import WorkUnit


@dataclass
class StageRecord:
    """Execution bookkeeping for one function of one invocation."""

    function: str
    ready_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    instance_id: int | None = None
    batch: int = 0
    cold_start: bool = False

    @property
    def queue_wait(self) -> float:
        """Seconds between becoming ready and starting execution."""
        if self.ready_at is None or self.started_at is None:
            return 0.0
        return self.started_at - self.ready_at


@dataclass
class Invocation:
    """One user request traversing an application DAG."""

    app: str
    arrival: float
    invocation_id: int
    stages: dict[str, StageRecord] = field(default_factory=dict)
    completed_at: float | None = None
    #: Stage re-executions consumed so far (a per-invocation retry budget
    #: shared across stages; see ``repro.faults.ResilienceSpec``).
    retries: int = 0
    #: Set when the gateway abandoned the invocation (deadline passed or
    #: retry budget exhausted); it then counts as ``timed_out``.
    abandoned_at: float | None = None
    #: Per-invocation work descriptor (token counts) drawn from the app's
    #: work model at arrival; ``None`` under the fixed-latency regime.
    work: WorkUnit | None = None

    def stage(self, function: str) -> StageRecord:
        """Record for ``function``, created on first access."""
        if function not in self.stages:
            self.stages[function] = StageRecord(function=function)
        return self.stages[function]

    @property
    def finished(self) -> bool:
        """Whether every sink stage has completed."""
        return self.completed_at is not None

    @property
    def latency(self) -> float:
        """E2E latency (arrival to completion); raises if unfinished."""
        if self.completed_at is None:
            raise ValueError(f"invocation {self.invocation_id} not finished")
        return self.completed_at - self.arrival


@dataclass
class FunctionDirective:
    """Policy-issued standing instruction for one function.

    ``keep_alive`` is the idle grace period before termination (``inf`` for
    always-on, 0 for unload-immediately-after-use — the pre-warm regime).
    ``warm_grace`` is the separate grace for a *freshly pre-warmed* instance
    that has not served anything yet: it covers prediction error between the
    scheduled warm-up and the actual arrival, so ``keep_alive = 0`` does not
    kill a pre-warmed instance before its invocation lands.  ``min_warm``
    asks the engine to maintain at least that many live instances (the
    Auto-scaler's scale-out lever).
    """

    config: HardwareConfig
    keep_alive: float = 0.0
    batch: int = 1
    min_warm: int = 0
    warm_grace: float = 6.0

    def __post_init__(self) -> None:
        if self.keep_alive < 0:
            raise ValueError(f"keep_alive must be >= 0, got {self.keep_alive}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.min_warm < 0:
            raise ValueError(f"min_warm must be >= 0, got {self.min_warm}")
        if self.warm_grace < 0:
            raise ValueError(f"warm_grace must be >= 0, got {self.warm_grace}")

"""Multi-application co-scheduling on one shared cluster.

The paper's evaluation (§VII-A) runs a dedicated load generator for *each*
of the three applications simultaneously against the same 8-machine
cluster.  :class:`MultiAppSimulator` reproduces that setting: every
application gets its own gateway state (queues, instances, policy) but all
of them share one event queue — a single simulated clock — and one
:class:`~repro.simulator.cluster.Cluster`, so capacity pressure from one
application back-pressures the others exactly as on the real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.graph import AppDAG
from repro.simulator.cluster import Cluster
from repro.simulator.engine import ServerlessSimulator
from repro.simulator.events import EventQueue
from repro.simulator.metrics import RunMetrics
from repro.workload.trace import Trace


@dataclass(frozen=True)
class Deployment:
    """One application with its trace and scheduling policy."""

    app: AppDAG
    trace: Trace
    policy: "object"  # Policy; typed loosely to avoid an import cycle


class MultiAppSimulator:
    """Co-run several applications on a shared clock and cluster."""

    def __init__(
        self,
        deployments: list[Deployment],
        *,
        cluster: Cluster | None = None,
        window: float = 1.0,
        drain_timeout: float = 300.0,
        seed: int = 0,
        noisy: bool = True,
    ) -> None:
        if not deployments:
            raise ValueError("need at least one deployment")
        names = [d.app.name for d in deployments]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate application names: {names}")
        self.events = EventQueue()
        self.cluster = cluster if cluster is not None else Cluster.build()
        self.drain_timeout = float(drain_timeout)
        self.simulators = [
            ServerlessSimulator(
                d.app,
                d.trace,
                d.policy,  # type: ignore[arg-type]
                cluster=self.cluster,
                events=self.events,
                window=window,
                seed=seed + i,
                noisy=noisy,
            )
            for i, d in enumerate(deployments)
        ]

    def run(self) -> dict[str, RunMetrics]:
        """Serve all traces to completion; metrics keyed by app name."""
        for sim in self.simulators:
            sim.setup()
        horizon = max(sim.trace.duration for sim in self.simulators)
        self.events.run_until(horizon)
        deadline = horizon + self.drain_timeout
        while (
            any(sim.open_invocations > 0 for sim in self.simulators)
            and self.events.now < deadline
        ):
            if not self.events.step():
                break
        return {sim.app.name: sim.finalize() for sim in self.simulators}

    def total_cost(self, metrics: dict[str, RunMetrics] | None = None) -> float:
        """Aggregate billed cost across all applications."""
        if metrics is None:
            metrics = {s.app.name: s.metrics for s in self.simulators}
        return sum(m.total_cost() for m in metrics.values())

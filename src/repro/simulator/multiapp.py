"""Multi-application co-scheduling facade over the runtime core.

The paper's evaluation (§VII-A) runs a dedicated load generator for *each*
of the three applications simultaneously against the same 8-machine
cluster.  :class:`MultiAppSimulator` reproduces that setting as a thin
facade: one shared :class:`~repro.simulator.runtime.Runtime` (a single
simulated clock and one :class:`~repro.simulator.cluster.Cluster`) with
one :class:`~repro.simulator.gateway.Gateway` per deployment, so capacity
pressure from one application back-pressures the others exactly as on the
real testbed.

Seeding (``seeding=``):

- ``"name"`` (default) — each tenant's seed derives from the root seed and
  its *application name* (:func:`~repro.simulator.runtime.derive_app_seed`),
  so results are invariant under deployment reordering;
- ``"legacy"`` — the historical positional scheme (``seed + index``),
  reproducing pre-refactor :class:`MultiAppSimulator` results bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simulator.cluster import Cluster
from repro.simulator.events import EventQueue
from repro.simulator.metrics import RunMetrics
from repro.simulator.runtime import (
    SEEDING_MODES,
    Deployment,
    Runtime,
    derive_app_seed,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.plan import FaultPlan
    from repro.overload.spec import OverloadSpec
    from repro.telemetry.recorder import Recorder

__all__ = ["Deployment", "MultiAppSimulator"]


class MultiAppSimulator:
    """Co-run several applications on a shared clock and cluster."""

    def __init__(
        self,
        deployments: list[Deployment],
        *,
        cluster: Cluster | None = None,
        window: float = 1.0,
        drain_timeout: float = 300.0,
        seed: int = 0,
        noisy: bool = True,
        seeding: str = "name",
        recorder: "Recorder | None" = None,
        init_failure_rate: float = 0.0,
        faults: "FaultPlan | None" = None,
        overload: "OverloadSpec | None" = None,
        retention: str = "full",
    ) -> None:
        if not deployments:
            raise ValueError("need at least one deployment")
        names = [d.app.name for d in deployments]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate application names: {names}")
        if seeding not in SEEDING_MODES:
            raise ValueError(
                f"unknown seeding mode {seeding!r}; "
                f"expected one of {SEEDING_MODES}"
            )
        self.runtime = Runtime(
            cluster=cluster,
            drain_timeout=drain_timeout,
            recorder=recorder,
            faults=faults,
            overload=overload,
        )
        self.gateways = [
            self.runtime.add_app(
                d.app,
                d.trace,
                d.policy,
                window=window,
                seed=(
                    seed + i
                    if seeding == "legacy"
                    else derive_app_seed(seed, d.app.name)
                ),
                noisy=noisy,
                init_failure_rate=init_failure_rate,
                retention=retention,
            )
            for i, d in enumerate(deployments)
        ]

    @property
    def events(self) -> EventQueue:
        """The shared event heap (one clock for all tenants)."""
        return self.runtime.events

    @property
    def cluster(self) -> Cluster:
        """The shared capacity model all tenants contend on."""
        return self.runtime.cluster

    @property
    def simulators(self) -> list:
        """Per-app gateways (historical alias from the pre-runtime API)."""
        return self.gateways

    def run(self) -> dict[str, RunMetrics]:
        """Serve all traces to completion; metrics keyed by app name."""
        return self.runtime.run()

    def total_cost(self, metrics: dict[str, RunMetrics] | None = None) -> float:
        """Aggregate billed cost across all applications."""
        return self.runtime.total_cost(metrics)

"""Text reports over run metrics.

Formats a :class:`~repro.simulator.metrics.RunMetrics` the way the paper's
operators would read Grafana: a cost breakdown, a per-function usage table,
a latency histogram and the violation summary — all plain text, so the CLI,
examples and logs share one renderer.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.simulator.metrics import RunMetrics

#: Glyph used for histogram bars.
_BAR = "#"


def format_cost_breakdown(metrics: RunMetrics) -> str:
    """Dollar totals split into initialization / inference / keep-alive."""
    breakdown = metrics.cost_breakdown()
    total = metrics.total_cost()
    lines = [f"total cost ${total:.4f}"]
    for key in ("init", "inference", "keepalive"):
        value = breakdown[key]
        share = value / total if total else 0.0
        lines.append(f"  {key:<10} ${value:.4f} ({share:.0%})")
    return "\n".join(lines)


def format_function_table(metrics: RunMetrics) -> str:
    """Per-function fleet summary: instances, billed time, cost, batches."""
    if metrics.retention == "sketch":
        # Sketch retention pre-folds exactly this table's rollup.
        per_fn: dict[str, dict[str, float]] = dict(metrics.billing.per_function)
    else:
        per_fn = defaultdict(
            lambda: {"instances": 0, "lifetime": 0.0, "cost": 0.0, "served": 0}
        )
        for usage in metrics.instances:
            row = per_fn[usage.function]
            row["instances"] += 1
            row["lifetime"] += usage.lifetime
            row["cost"] += usage.cost
            row["served"] += usage.invocations_served
    lines = [
        f"{'function':<14} {'instances':>9} {'billed':>9} {'cost':>9} {'served':>7}"
    ]
    for fn in sorted(per_fn):
        row = per_fn[fn]
        lines.append(
            f"{fn:<14} {int(row['instances']):>9} {row['lifetime']:>8.1f}s "
            f"${row['cost']:>8.4f} {int(row['served']):>7}"
        )
    return "\n".join(lines)


def format_latency_quantiles(metrics: RunMetrics) -> str:
    """Latency quantile summary from the streaming sketch (sketch mode).

    Sketch-retention runs drop per-invocation records, so a histogram is
    unavailable; the sketch answers quantile queries instead, within its
    documented rank-error bound.
    """
    sketch = metrics.latency_sketch
    if sketch is None or len(sketch) == 0:
        return "(no completed invocations)"
    qs = (50, 90, 95, 99, 99.9)
    parts = [f"p{q:g} {sketch.quantile(q):.2f}s" for q in qs]
    return (
        f"latency quantiles (streaming sketch, n={len(sketch)}, "
        f"rank error <= {sketch.rank_error_bound:.2%}):\n  "
        + "  ".join(parts)
        + f"\n  min {sketch.minimum:.2f}s  max {sketch.maximum:.2f}s"
    )


def format_latency_histogram(
    metrics: RunMetrics, *, bins: int = 10, width: int = 40
) -> str:
    """ASCII histogram of E2E latencies with the SLA marked."""
    if metrics.retention == "sketch":
        return format_latency_quantiles(metrics)
    lat = metrics.latencies()
    if lat.size == 0:
        return "(no completed invocations)"
    edges = np.linspace(0.0, max(float(lat.max()), metrics.sla) * 1.01, bins + 1)
    counts, _ = np.histogram(lat, bins=edges)
    peak = max(int(counts.max()), 1)
    lines = []
    for k in range(bins):
        bar = _BAR * int(round(width * counts[k] / peak))
        marker = " <- SLA" if edges[k] <= metrics.sla < edges[k + 1] else ""
        lines.append(
            f"{edges[k]:>6.2f}-{edges[k + 1]:>5.2f}s |{bar:<{width}}| "
            f"{counts[k]:>4}{marker}"
        )
    return "\n".join(lines)


def format_report(metrics: RunMetrics) -> str:
    """The full report: header, cost, fleet table, histogram, violations.

    Works for both retention modes: sketch-retention runs render latency
    figures from the streaming accumulators (same layout, approximate
    percentiles) and a quantile summary instead of the histogram.
    """
    summary = metrics.summary()
    n_completed = metrics.n_completed
    header = (
        f"run report — app={metrics.app} policy={metrics.policy} "
        f"sla={metrics.sla}s duration={metrics.duration:.0f}s\n"
        f"invocations: {n_completed} completed, "
        f"{metrics.unfinished} unfinished, {metrics.timed_out} timed out\n"
        f"violations {metrics.violation_ratio():.1%}, "
        f"availability {metrics.availability():.1%}, "
        f"goodput {metrics.goodput():.1%}\n"
        f"latency: mean {summary['mean_latency']:.2f}s "
        f"p50 {summary['p50_latency']:.2f}s "
        f"p99 {summary['p99_latency']:.2f}s"
        if n_completed
        else f"run report — app={metrics.app} policy={metrics.policy} (no traffic)"
    )
    reinits = (
        f"(re)initializations: {metrics.initializations} "
        f"({metrics.reinit_fraction():.1%} of stage executions cold"
        + (
            f", {metrics.failed_initializations} failed)"
            if metrics.failed_initializations
            else ")"
        )
    )
    sections = [
        header,
        format_cost_breakdown(metrics),
        format_function_table(metrics),
        format_latency_histogram(metrics),
        reinits,
    ]
    if metrics.stage_retries or metrics.failed_executions or metrics.fallbacks:
        sections.append(
            f"faults absorbed: {metrics.stage_retries} stage retries, "
            f"{metrics.failed_executions} failed executions, "
            f"{metrics.fallbacks} fallbacks"
        )
    if metrics.shed or metrics.rejected:
        # Offered load from the metrics' own accounting (works equally on
        # live counters and on an aggregate()-reconstructed trace view).
        offered = (
            metrics.n_completed + metrics.unfinished + metrics.timed_out
            + metrics.shed + metrics.rejected
        )
        shed_rate = (metrics.shed + metrics.rejected) / offered if offered else 0.0
        sections.append(
            f"overload absorbed: {metrics.shed} shed from bounded queues, "
            f"{metrics.rejected} rejected at admission "
            f"({shed_rate:.1%} of {offered} offered), "
            f"goodput under overload {metrics.goodput():.1%}"
        )
    return "\n\n".join(sections)

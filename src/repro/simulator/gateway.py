"""Per-application gateway: queues, directives, instance pools, metrics.

A :class:`Gateway` owns everything that belongs to *one* application being
served — its invocation queues, standing :class:`FunctionDirective`\\ s,
per-function :class:`~repro.simulator.pools.InstancePool` indexes, oracle
performance models and :class:`~repro.simulator.metrics.RunMetrics` — and
drives that application's stage dispatch, instance lifecycle and window
ticks.  The shared *mechanism* it draws on (the simulated clock, the event
heap, cluster capacity) lives in :class:`~repro.simulator.runtime.Runtime`;
several gateways bound to one runtime co-run on a single timeline and
back-pressure each other through the shared cluster, which is the paper's
§VII-A evaluation setting (three applications, one 8-machine testbed).

This mirrors the paper's split between the Gateway + per-instance Agent
(per-application, §VI) and the platform underneath: the gateway is
responsible for mechanism — instance lifecycle, queueing, batching,
capacity requests, billing records — while the policy supplies *decisions*
through :class:`~repro.simulator.invocation.FunctionDirective` updates and
pre-warm requests.

Stage dispatch rules (the Gateway + per-instance Agent of §VI):

- a stage becomes *ready* when all its DAG predecessors finished;
- ready stages queue per function; an idle instance takes up to
  ``directive.batch`` queued stages as one batch;
- if no instance is live, a cold start is triggered on the directive's
  configuration; stages served by an instance that was not warm when they
  became ready count as cold (re)initializations (Fig. 9b);
- idle instances expire after ``directive.keep_alive`` seconds;
- pre-warm requests launch instances at a policy-chosen time so
  initialization overlaps upstream execution (§V-B1).

Hot-path structure (see ``docs/performance.md``): instance lifecycle state
lives in per-function :class:`~repro.simulator.pools.InstancePool` indexes,
arrivals and window ticks are *streamed* (each event schedules its
successor on a pre-reserved sequence block, keeping the event heap
O(live events) instead of O(trace length)), and keep-alive expiry timers
are cancelled on dispatch instead of left to fire as dead closures.

Observability (see ``docs/observability.md``): every point that mutates a
:class:`~repro.simulator.metrics.RunMetrics` counter also emits a typed
:mod:`repro.telemetry.events` event through the runtime's recorder, so
the metrics are reconstructible from a recorded trace
(:func:`repro.telemetry.aggregate.aggregate`).  Emission is guarded by
one ``self._rec is not None`` check per site; under the default
:class:`~repro.telemetry.recorder.NullRecorder` no event object is ever
built and the hot loop is unchanged.
"""

from __future__ import annotations

import dataclasses
import math
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.dag.graph import AppDAG
from repro.hardware.configs import Backend, HardwareConfig
from repro.hardware.perfmodel import GroundTruthPerformance
from repro.hardware.servicetime import WorkUnit
from repro.simulator.container import Instance, InstanceState
from repro.simulator.invocation import FunctionDirective, Invocation
from repro.simulator.metrics import InstanceUsage, RunMetrics
from repro.simulator.pools import InstancePool
from repro.telemetry.events import (
    Arrival,
    ColdStart,
    DirectiveChanged,
    ExecutionFailed,
    FallbackActivated,
    InstanceExpired,
    InstanceInitFailed,
    InstanceLaunched,
    InstanceSwappedIn,
    InvocationFinished,
    InvocationRejected,
    InvocationShed,
    InvocationTimedOut,
    ModelEvicted,
    PrewarmHit,
    PrewarmMiss,
    PrewarmScheduled,
    RunFinished,
    RunStarted,
    SlaViolation,
    StageFinish,
    StageReady,
    StageRetried,
    StageStart,
    TokenStage,
    WindowTick,
)
from repro.utils.rng import ensure_rng
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.faults.plan import FaultPlan, ResilienceSpec
    from repro.overload.spec import OverloadSpec, TokenBucket
    from repro.policies.base import Policy
    from repro.simulator.events import TimerHandle
    from repro.simulator.runtime import Runtime

#: Termination reasons that mean a pre-warmed instance genuinely expired
#: unused — the only ones that should count as a :class:`PrewarmMiss`.
#: Run shutdown, init failures and fault-injected kills (machine outages,
#: mid-flight execution failures) say nothing about the policy's warm-up
#: prediction being wrong.
_GENUINE_EXPIRY = frozenset(
    {"keep-alive-expired", "keep-alive-sweep", "scale-in", "stale-config"}
)


class SimulationContext:
    """The policy's window into its application's running gateway."""

    def __init__(self, gateway: "Gateway") -> None:
        self._gw = gateway

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._gw.events.now

    @property
    def app(self) -> AppDAG:
        """The application being served."""
        return self._gw.app

    @property
    def window(self) -> float:
        """Control-window length in seconds (1 s in the paper)."""
        return self._gw.window

    def directive(self, function: str) -> FunctionDirective:
        """Current standing directive for ``function``."""
        return self._gw.directives[function]

    def set_directive(
        self,
        function: str,
        directive: FunctionDirective,
        reason: str = "",
    ) -> None:
        """Replace the standing directive for ``function``.

        ``reason`` is the policy's explanation for the change; it is
        recorded on the :class:`~repro.telemetry.events.DirectiveChanged`
        event and surfaces in the decision-audit view
        (:func:`repro.telemetry.audit.decision_audit`).
        """
        if function not in self._gw.app.function_names:
            raise KeyError(f"unknown function {function!r}")
        self._gw.directives[function] = directive
        self._gw.record_directive(function, directive, reason)

    def schedule_warmup(
        self,
        function: str,
        start_time: float,
        config: HardwareConfig | None = None,
        count: int = 1,
    ) -> None:
        """Ask the gateway to have ``count`` instances warming from ``start_time``.

        Duplicate requests are absorbed: at fire time the gateway only
        launches instances beyond those already initializing or idle.
        """
        self._gw.schedule_warmup(function, start_time, config, count)

    @property
    def traced(self) -> bool:
        """Whether this run records a telemetry trace.

        Policies may skip semantically idempotent bookkeeping (e.g.
        re-issuing an unchanged directive) only when untraced; under a
        recorder every emission is part of the audit trail.
        """
        return self._gw._rec is not None

    def counts_history(self) -> np.ndarray:
        """Invocation counts of all *completed* windows so far.

        Returns a read-only view into the gateway's append-only count
        buffer — O(1) per call, so per-arrival policies can consult the
        full history without an O(n) copy.  The entries for already
        completed windows never change; successive calls return one more
        entry per completed window.
        """
        return self._gw.counts_view()

    def live_count(
        self, function: str, config: HardwareConfig | None = None
    ) -> int:
        """Instances currently holding resources for ``function``.

        With ``config`` given, count only instances of that configuration.
        """
        return self._gw.pools[function].live_count(config)

    def idle_count(self, function: str) -> int:
        """Warm idle instances for ``function``."""
        return self._gw.pools[function].idle_count()

    def queue_length(self, function: str) -> int:
        """Stages queued for ``function``."""
        return len(self._gw.queues[function])

    def model_resident(self, function: str) -> bool:
        """Whether ``function``'s model weights are host-resident.

        A swap-capable model (see
        :meth:`repro.profiler.profiles.FunctionProfile.swap_time`) whose
        weights are resident will next launch on GPU at swap-in cost, so
        policies can budget the shorter lead when scheduling pre-warms.
        Always ``False`` for fixed (non-swap) profiles.
        """
        return self._gw.runtime.residency.resident(
            (self._gw.app.name, function)
        )


class Gateway:
    """Serves one application's trace on a shared :class:`Runtime`."""

    def __init__(
        self,
        app: AppDAG,
        trace: Trace,
        policy: "Policy",
        *,
        runtime: "Runtime",
        window: float = 1.0,
        seed: int = 0,
        noisy: bool = True,
        init_failure_rate: float = 0.0,
        gpu_contention: float = 0.0,
        retention: str = "full",
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if not 0.0 <= init_failure_rate < 1.0:
            raise ValueError(
                f"init_failure_rate must be in [0, 1), got {init_failure_rate}"
            )
        if gpu_contention < 0.0:
            raise ValueError(
                f"gpu_contention must be >= 0, got {gpu_contention}"
            )
        self.app = app
        self.trace = trace
        self.policy = policy
        self.runtime = runtime
        self.cluster = runtime.cluster
        self.events = runtime.events
        # Telemetry: `None` under the NullRecorder so every emission point
        # is a single attribute check and no event object is built.
        self._rec = runtime.recorder if runtime.recorder.enabled else None
        self.window = float(window)
        self.seed = seed
        self.init_failure_rate = float(init_failure_rate)
        self.gpu_contention = float(gpu_contention)
        root = ensure_rng(seed)
        self._fault_rng = np.random.default_rng(int(root.integers(2**32)))
        # Fault-injection plane (None in the default, fault-free regime;
        # every hook below is a single attribute check when inactive).
        faults = runtime.faults
        self._faults: "FaultPlan | None" = faults
        self._resilience: "ResilienceSpec | None" = (
            faults.resilience if faults is not None else None
        )
        self._fallback_config: HardwareConfig | None = (
            HardwareConfig.from_key(self._resilience.fallback_config)
            if self._resilience is not None
            else None
        )
        self._crash_loops: dict[str, int] = {}
        self._gpu_starved: dict[str, int] = {}
        self._deadline_timers: dict[int, "TimerHandle"] = {}
        # Overload-resilience plane (None in the default regime; every hook
        # below is a single attribute check when inactive, and no RNG is
        # involved — overload decisions are pure functions of time/state).
        overload = runtime.overload
        self._overload: "OverloadSpec | None" = overload
        self._admission: "TokenBucket | None" = (
            overload.make_bucket() if overload is not None else None
        )
        self._degraded_config: HardwareConfig | None = (
            HardwareConfig.from_key(overload.degraded_config)
            if overload is not None
            else None
        )
        #: fn -> consecutive batch failures (circuit-breaker arming count).
        self._breaker_fails: dict[str, int] = {}
        #: fn -> "open" | "half-open" | "probing" (absent = closed).
        self._breaker_state: dict[str, str] = {}
        #: fn -> the policy directive saved while a brownout tier is active.
        self._brownout_saved: dict[str, FunctionDirective] = {}
        #: invocation id -> retry-storm resubmission generation (> 0 only).
        self._storm_generation: dict[int, int] = {}
        self._crowd_times: tuple[float, ...] = ()
        self._crowd_seq_base = 0
        self.oracles: dict[str, GroundTruthPerformance] = {
            spec.name: GroundTruthPerformance(
                spec.profile, rng=int(root.integers(2**32)), noisy=noisy
            )
            for spec in app.specs
        }
        # Per-invocation work sampling (token-work regimes).  The stream is
        # drawn from the root *after* the fault and oracle seeds, and only
        # for apps that carry a work model, so work-free apps consume the
        # historical root draw sequence unchanged.
        self._work_model = app.work_model
        self._work_rng = (
            np.random.default_rng(int(root.integers(2**32)))
            if app.work_model is not None
            else None
        )
        # Record retention: "full" keeps every record (historical behaviour),
        # "sketch" folds completions into streaming accumulators so memory
        # stays O(1) in the arrival count.  `_sketch` is the hot-path bool.
        self.metrics = RunMetrics(
            app=app.name, policy=policy.name, sla=app.sla, retention=retention
        )
        self._sketch = retention == "sketch"
        self.directives: dict[str, FunctionDirective] = {}
        self.pools: dict[str, InstancePool] = {
            f: InstancePool() for f in app.function_names
        }
        self.queues: dict[str, deque[Invocation]] = {
            f: deque() for f in app.function_names
        }
        self.pending_launches: dict[str, deque[HardwareConfig]] = {
            f: deque() for f in app.function_names
        }
        # Append-only per-window arrival counts, kept in a doubling numpy
        # buffer so counts_history() is an O(1) read-only view, not a copy.
        self._counts_buf = np.zeros(256, dtype=np.int64)
        self._counts_len = 0
        self.pending_stage_demand: dict[str, int] = {
            f: 0 for f in app.function_names
        }
        self._current_window_count = 0
        self._open_invocations = 0
        self._shutting_down = False
        #: Optional terminal-disposition callback ``(inv, status)`` with
        #: status in {"completed", "timed_out", "shed", "rejected"}.  The
        #: live serving façade (:mod:`repro.serving`) uses it to resolve
        #: in-flight HTTP responses; offline runs never set it, so the
        #: hook costs one attribute check per terminal event.
        self._on_done = None
        self._arrival_seq_base = 0
        self._tick_seq_base = 0
        self._n_windows = 0
        self.ctx = SimulationContext(self)

    # ------------------------------------------------------------------ run
    def setup(self) -> None:
        """Register the policy and start the arrival / window-tick streams.

        Arrivals and ticks are *streamed*: only the next event of each chain
        sits in the heap, and it schedules its successor when it fires.
        Sequence blocks are reserved up front so simultaneous events
        tie-break exactly as a fully pre-pushed schedule would.
        """
        if self._rec is not None:
            self._rec.emit(
                RunStarted(
                    t=self.events.now,
                    app=self.app.name,
                    policy=self.policy.name,
                    sla=self.app.sla,
                    window=self.window,
                    functions=tuple(self.app.function_names),
                )
            )
        self.policy.on_register(self.app, self.ctx)
        for fn in self.app.function_names:
            if fn not in self.directives:
                raise RuntimeError(
                    f"policy {self.policy.name!r} left function {fn!r} without a directive"
                )
        n_arrivals = self._arrival_capacity()
        self._arrival_seq_base = self.events.reserve(n_arrivals)
        self._n_windows = int(math.ceil(self.trace.duration / self.window))
        self._tick_seq_base = self.events.reserve(self._n_windows)
        if n_arrivals:
            self._schedule_arrival(0)
        if self._n_windows:
            self._schedule_tick(1)
        if self._faults is not None and self._faults.flash_crowds:
            # Flash-crowd injections stream exactly like trace arrivals,
            # on their own reserved sequence block (reserved only when a
            # crowd exists, so crowd-free plans keep the historical
            # tie-break order byte for byte).
            self._crowd_times = self._faults.injected_times()
            self._crowd_seq_base = self.events.reserve(len(self._crowd_times))
            if self._crowd_times:
                self._schedule_crowd(0)

    def finalize(self) -> RunMetrics:
        """Terminate remaining instances and seal the metrics."""
        self._finalize()
        return self.metrics

    def _arrival_capacity(self) -> int:
        """Arrival-sequence slots to reserve during :meth:`setup`.

        Equal-time events tie-break by reservation order (arrivals, then
        window ticks, then dynamics), so a live gateway — whose arrivals
        are injected one HTTP request at a time — must reserve the same
        *class* position even though it has no trace yet.  Offline
        gateways reserve exactly one slot per trace arrival.
        """
        return len(self.trace)

    @property
    def open_invocations(self) -> int:
        """Invocations that have arrived but not completed."""
        return self._open_invocations

    def record_directive(
        self, function: str, directive: FunctionDirective, reason: str
    ) -> None:
        """Emit the ``DirectiveChanged`` audit event for one update."""
        if self._rec is not None:
            self._rec.emit(
                DirectiveChanged(
                    t=self.events.now,
                    app=self.app.name,
                    function=function,
                    config=directive.config.key,
                    keep_alive=directive.keep_alive,
                    batch=directive.batch,
                    min_warm=directive.min_warm,
                    warm_grace=directive.warm_grace,
                    reason=reason,
                )
            )

    # ------------------------------------------------------------- arrivals
    def _schedule_arrival(self, index: int) -> None:
        t = float(self.trace.times[index])
        self.events.schedule(
            t, self._make_arrival(t, index), seq=self._arrival_seq_base + index
        )

    def _make_arrival(self, t: float, index: int):
        def fire() -> None:
            if index + 1 < len(self.trace):
                self._schedule_arrival(index + 1)
            self._handle_arrival(t)

        return fire

    def _schedule_crowd(self, index: int) -> None:
        t = self._crowd_times[index]

        def fire() -> None:
            if index + 1 < len(self._crowd_times):
                self._schedule_crowd(index + 1)
            self._handle_arrival(t, injected=True)

        self.events.schedule(t, fire, seq=self._crowd_seq_base + index)

    def _handle_arrival(
        self, t: float, *, injected: bool = False, generation: int = 0
    ) -> Invocation:
        """One arrival entering the front door (trace, crowd or resubmit).

        The shared path behind trace arrivals, flash-crowd injections and
        retry-storm resubmissions: admission control first (a rejected
        invocation never enters the system — no work sample, no demand, no
        ``arrival`` event), then the historical arrival bookkeeping in its
        exact original operation order.
        """
        inv = Invocation(
            app=self.app.name,
            arrival=t,
            invocation_id=self.runtime.next_invocation_id(),
        )
        if injected or generation:
            self.metrics.injected_arrivals += 1
        if generation:
            self._storm_generation[inv.invocation_id] = generation
        if self._admission is not None and not self._admission.admit(t):
            self.metrics.rejected += 1
            if self._rec is not None:
                self._rec.emit(
                    InvocationRejected(
                        t=t, app=self.app.name, invocation_id=inv.invocation_id
                    )
                )
            self._maybe_resubmit(inv, t)
            if self._on_done is not None:
                self._on_done(inv, "rejected")
            return inv
        if self._work_model is not None:
            inv.work = self._work_model.sample(self._work_rng)
        inv.remaining = len(self.app)  # type: ignore[attr-defined]
        for fn in self.app.function_names:
            self.pending_stage_demand[fn] += 1
        if not self._sketch:
            # Sketch retention drops the record at completion time;
            # arrivals stay implied by the conservation counters
            # (completed + unfinished + timed_out + shed).
            self.metrics.invocations.append(inv)
        self._open_invocations += 1
        self._current_window_count += 1
        res = self._resilience
        if res is not None and res.deadline_factor is not None:
            self._arm_deadline(inv)
        if self._rec is not None:
            self._rec.emit(
                Arrival(
                    t=t, app=self.app.name, invocation_id=inv.invocation_id
                )
            )
        self.policy.on_arrival(inv, self.ctx)
        for fn in self.app.sources():
            self._stage_ready(inv, fn)
        return inv

    def _maybe_resubmit(self, inv: Invocation, t: float) -> None:
        """Retry-storm amplification: resubmit a shed/rejected invocation.

        A fresh invocation (new id, counted ``injected``) re-enters the
        front door after the storm's delay, up to ``resubmits``
        generations deep per original arrival.
        """
        faults = self._faults
        if faults is None or not faults.retry_storms:
            return
        storm = faults.storm_for(t)
        if storm is None:
            return
        generation = self._storm_generation.pop(inv.invocation_id, 0)
        if generation >= storm.resubmits:
            return

        def fire() -> None:
            if self._shutting_down:
                return
            self._handle_arrival(self.events.now, generation=generation + 1)

        self.events.schedule_in(storm.delay, fire)

    def _stage_ready(self, inv: Invocation, fn: str) -> None:
        if self._overload is not None:
            if self._overload.bounds_queues and not self._admit_to_queue(
                inv, fn
            ):
                return
        inv.stage(fn).ready_at = self.events.now
        if self._rec is not None:
            self._rec.emit(
                StageReady(
                    t=self.events.now,
                    app=self.app.name,
                    invocation_id=inv.invocation_id,
                    function=fn,
                )
            )
        self.queues[fn].append(inv)
        if self._overload is not None:
            depth = len(self.queues[fn])
            if depth > self.metrics.peak_queue_depth:
                self.metrics.peak_queue_depth = depth
        self._dispatch(fn)

    def _admit_to_queue(self, inv: Invocation, fn: str) -> bool:
        """Enforce the bounded queue: shed one invocation when full.

        Returns ``False`` when the *incoming* invocation was the victim
        (the caller must not enqueue it); ``True`` otherwise — possibly
        after evicting a queued victim to make room.

        Victim selection per ``shed_policy``: ``reject-newest`` drops the
        incoming invocation; ``drop-oldest`` drops the head of the queue;
        ``deadline-aware`` drops the invocation least likely to meet its
        SLA — the one with the earliest arrival (least remaining slack)
        among the incoming and queued candidates, deterministic on ties.
        """
        spec = self._overload
        queue = self.queues[fn]
        if len(queue) < spec.queue_limit:
            return True
        policy = spec.shed_policy
        if policy == "reject-newest":
            victim = inv
        elif policy == "drop-oldest":
            victim = queue[0]
        else:  # deadline-aware
            victim = inv
            for queued in queue:
                if queued.arrival < victim.arrival:
                    victim = queued
        if victim is inv:
            self._shed(inv, function=fn, reason=policy)
            return False
        queue.remove(victim)
        self._shed(victim, function=fn, reason=policy)
        return True

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, fn: str) -> None:
        directive = self.directives[fn]
        queue = self.queues[fn]
        pool = self.pools[fn]
        breaker = None
        if self._breaker_state:
            breaker = self._breaker_state.get(fn)
            if breaker == "open" or breaker == "probing":
                # Circuit open: no dispatch, no launches, until the
                # cool-down's half-open probe (or its resolution).
                return
        while queue:
            inst = pool.pick_idle(directive.config)
            if inst is None:
                break
            # The batch limit is sized for the directive's configuration; a
            # stale-config instance serves sequentially so a large batch
            # cannot blow its (slower) stage latency.
            limit = directive.batch if inst.config == directive.config else 1
            if breaker is not None:  # half-open: a single size-1 probe
                limit = 1
            batch_n = min(limit, len(queue))
            items = [queue.popleft() for _ in range(batch_n)]
            self._execute(inst, items)
            if breaker is not None:
                self._breaker_state[fn] = "probing"
                return
        if queue:
            # Cover the backlog with launches, accounting for instances that
            # are already initializing and will drain the queue when warm.
            initializing = pool.initializing_count() + len(
                self.pending_launches[fn]
            )
            capacity = initializing * directive.batch
            shortfall = len(queue) - capacity
            if shortfall > 0:
                n_launches = math.ceil(shortfall / directive.batch)
                if breaker is not None:
                    # Half-open with no warm instance: launch at most one
                    # container to host the probe.
                    n_launches = 1 if initializing == 0 else 0
                for _ in range(n_launches):
                    self._launch(fn, directive.config)

    def _execute(self, inst: Instance, items: list[Invocation]) -> None:
        now = self.events.now
        batch_n = len(items)
        work: WorkUnit | None = None
        if self._work_model is not None:
            drawn = [inv.work for inv in items if inv.work is not None]
            if drawn:
                # Padded-batch semantics: the batch runs at its longest
                # member's token counts.
                work = WorkUnit.combine(drawn)
        exec_time = self.oracles[inst.function].inference_time(
            inst.config, batch_n, work=work
        )
        if self.gpu_contention > 0.0 and inst.config.backend is Backend.GPU:
            # MPS co-location slowdown (§IV-A2: PCIe/GPU-memory contention
            # between instances sharing a device): scale with the fraction
            # of the device allocated to *other* instances.
            machine = self.cluster.machines[inst.placement.machine]
            others = machine.gpu_slots_used - inst.config.mps_slots
            share = max(0, others) / machine.gpu_slots_total
            exec_time *= 1.0 + self.gpu_contention * share
        fail_at: float | None = None
        if self._faults is not None:
            factor = self._faults.straggler_factor(
                inst.function, inst.config.backend.value, now
            )
            if factor != 1.0:
                exec_time *= factor
            rate = self._faults.execution_fault_rate(inst.function, now)
            if rate > 0.0 and self._fault_rng.random() < rate:
                # The batch dies part-way through execution; the fraction
                # completed before the crash is uniform, so the instance is
                # billed for real (wasted) work before the retry path runs.
                fail_at = exec_time * float(self._fault_rng.random())
        inst.mark_busy(now, batch_n)
        self.pools[inst.function].transition(inst, InstanceState.IDLE)
        if inst.expiry_timer is not None:
            inst.expiry_timer.cancel()
            inst.expiry_timer = None
        self.pending_stage_demand[inst.function] -= batch_n
        for inv in items:
            rec = inv.stage(inst.function)
            rec.started_at = now
            rec.instance_id = inst.instance_id
            rec.batch = batch_n
            rec.cold_start = inst.warm_at > (rec.ready_at or 0.0)
        self.metrics.stage_executions += batch_n
        self.metrics.cold_stage_executions += sum(
            1 for inv in items if inv.stage(inst.function).cold_start
        )
        if self._rec is not None:
            # Prefill/decode attribution of the sampled wall-clock time:
            # split pro rata by the service model's phase expectations, so
            # the two phases sum to exec_time exactly (noise and fixed
            # overhead apportioned proportionally).
            token_split: tuple[float, float] | None = None
            if work is not None:
                model = self.oracles[inst.function].profile.service_model
                if model is not None and hasattr(model, "split"):
                    pre, dec = model.split(inst.config, batch_n, work)
                    if pre + dec > 0.0:
                        prefill = exec_time * pre / (pre + dec)
                        token_split = (prefill, exec_time - prefill)
            if inst.prewarmed and inst.batches_served == 1:
                self._rec.emit(
                    PrewarmHit(
                        t=now,
                        app=self.app.name,
                        function=inst.function,
                        instance_id=inst.instance_id,
                        idle_wait=now - inst.warm_at,
                    )
                )
            for inv in items:
                rec = inv.stage(inst.function)
                self._rec.emit(
                    StageStart(
                        t=now,
                        app=self.app.name,
                        invocation_id=inv.invocation_id,
                        function=inst.function,
                        instance_id=inst.instance_id,
                        batch=batch_n,
                        cold=rec.cold_start,
                    )
                )
                if rec.cold_start:
                    self._rec.emit(
                        ColdStart(
                            t=now,
                            app=self.app.name,
                            invocation_id=inv.invocation_id,
                            function=inst.function,
                            instance_id=inst.instance_id,
                            wait=now - (rec.ready_at or 0.0),
                        )
                    )
                if token_split is not None and inv.work is not None:
                    self._rec.emit(
                        TokenStage(
                            t=now,
                            app=self.app.name,
                            invocation_id=inv.invocation_id,
                            function=inst.function,
                            tokens_in=inv.work.tokens_in,
                            tokens_out=inv.work.tokens_out,
                            prefill=token_split[0],
                            decode=token_split[1],
                        )
                    )
        if self._faults is None:
            self.events.schedule_in(
                exec_time, lambda: self._stage_done(inst, items, exec_time)
            )
        elif fail_at is not None:
            inst.inflight = items
            inst.done_timer = self.events.schedule_in(
                fail_at, lambda: self._execution_failed(inst, items)
            )
        else:
            # Track the batch so a machine outage can cancel it mid-flight
            # and hand the items to the retry path.
            inst.inflight = items
            inst.done_timer = self.events.schedule_in(
                exec_time, lambda: self._stage_done(inst, items, exec_time)
            )

    def _stage_done(
        self, inst: Instance, items: list[Invocation], exec_time: float
    ) -> None:
        now = self.events.now
        if self._faults is not None:
            inst.inflight = None
            inst.done_timer = None
        inst.mark_idle(now, exec_time)
        fn = inst.function
        self.pools[fn].transition(inst, InstanceState.BUSY)
        for inv in items:
            if inv.abandoned_at is not None:
                # Abandoned mid-flight (deadline fired while executing):
                # the work completes but no longer counts for anything.
                continue
            inv.stage(fn).finished_at = now
            inv.remaining -= 1  # type: ignore[attr-defined]
            if self._rec is not None:
                self._rec.emit(
                    StageFinish(
                        t=now,
                        app=self.app.name,
                        invocation_id=inv.invocation_id,
                        function=fn,
                        instance_id=inst.instance_id,
                    )
                )
            self.policy.on_stage_complete(inv, fn, self.ctx)
            for succ in self.app.successors(fn):
                preds = self.app.predecessors(succ)
                if all(
                    inv.stage(p).finished_at is not None for p in preds
                ):
                    self._stage_ready(inv, succ)
            if inv.remaining == 0:  # type: ignore[attr-defined]
                inv.completed_at = now
                self._open_invocations -= 1
                if self._deadline_timers:
                    handle = self._deadline_timers.pop(inv.invocation_id, None)
                    if handle is not None:
                        handle.cancel()
                if self._sketch:
                    # Fold the completed record into the streaming
                    # accumulators and let it go out of scope — nothing
                    # retains it past this point.
                    self.metrics.record_completion(now - inv.arrival)
                if self._rec is not None:
                    latency = now - inv.arrival
                    self._rec.emit(
                        InvocationFinished(
                            t=now,
                            app=self.app.name,
                            invocation_id=inv.invocation_id,
                            latency=latency,
                        )
                    )
                    # Same epsilon as RunMetrics.violation_ratio.
                    if latency > self.app.sla + 1e-9:
                        self._rec.emit(
                            SlaViolation(
                                t=now,
                                app=self.app.name,
                                invocation_id=inv.invocation_id,
                                latency=latency,
                                sla=self.app.sla,
                            )
                        )
                if self._on_done is not None:
                    self._on_done(inv, "completed")
        if self._overload is not None and self._overload.breaks_circuits:
            self._breaker_success(fn)
        self._dispatch(fn)
        if inst.state is InstanceState.IDLE:
            self._arm_expiry(inst)

    # ------------------------------------------------------------- resilience
    def evict_machine(self, index: int) -> None:
        """Terminate every live instance on a crashed machine.

        Called by the runtime's outage machinery when a machine goes down.
        In-flight batches are cancelled and requeued through the retry
        path; afterwards dispatch runs so surviving capacity absorbs the
        displaced work.
        """
        for fn, pool in self.pools.items():
            doomed = [
                inst
                for inst in pool
                if inst.is_live and inst.placement.machine == index
            ]
            for inst in doomed:
                items = inst.inflight
                if inst.done_timer is not None:
                    inst.done_timer.cancel()
                    inst.done_timer = None
                inst.inflight = None
                self._terminate(inst, reason="machine-failed")
                if items:
                    self._requeue(fn, items)
        for fn in self.app.function_names:
            if self.queues[fn]:
                self._dispatch(fn)

    def retry_pending_launches(self) -> None:
        """Re-attempt queued launches (capacity may have been restored)."""
        self._retry_pending_launches()

    def _execution_failed(
        self, inst: Instance, items: list[Invocation]
    ) -> None:
        """An injected fault killed the batch mid-flight."""
        inst.inflight = None
        inst.done_timer = None
        fn = inst.function
        self.metrics.failed_executions += 1
        if self._rec is not None:
            self._rec.emit(
                ExecutionFailed(
                    t=self.events.now,
                    app=self.app.name,
                    function=fn,
                    instance_id=inst.instance_id,
                    batch=len(items),
                )
            )
        if self._overload is not None and self._overload.breaks_circuits:
            self._breaker_failure(fn)
        self._terminate(inst, reason="execution-failed")
        self._requeue(fn, items)

    def _requeue(self, fn: str, items: list[Invocation]) -> None:
        """Send a failed batch's invocations back through the retry path.

        Each item's stage record is reset to unstarted and its demand
        charge restored, then the stage is re-readied after an exponential
        backoff — unless the invocation's retry budget is exhausted, in
        which case it is abandoned.
        """
        res = self._resilience
        for inv in items:
            if inv.abandoned_at is not None or inv.finished:
                continue
            rec = inv.stage(fn)
            rec.started_at = None
            rec.instance_id = None
            rec.batch = 0
            rec.cold_start = False
            self.pending_stage_demand[fn] += 1
            inv.retries += 1
            if res is not None and inv.retries > res.max_retries:
                self._abandon(inv, reason="retries-exhausted")
                continue
            delay = 0.0
            if res is not None and res.retry_backoff > 0.0:
                # Exponential backoff, capped so a generous retry budget
                # cannot schedule events arbitrarily far past the horizon.
                delay = min(
                    res.retry_backoff * 2.0 ** (inv.retries - 1),
                    res.retry_backoff_max,
                )
            self.metrics.stage_retries += 1
            if self._rec is not None:
                self._rec.emit(
                    StageRetried(
                        t=self.events.now,
                        app=self.app.name,
                        invocation_id=inv.invocation_id,
                        function=fn,
                        attempt=inv.retries,
                        delay=delay,
                    )
                )
            self.events.schedule_in(delay, self._make_retry(inv, fn))

    def _make_retry(self, inv: Invocation, fn: str):
        def fire() -> None:
            if inv.abandoned_at is not None or self._shutting_down:
                return
            self._stage_ready(inv, fn)

        return fire

    def _arm_deadline(self, inv: Invocation) -> None:
        res = self._resilience
        assert res is not None and res.deadline_factor is not None

        def fire() -> None:
            self._deadline_timers.pop(inv.invocation_id, None)
            if inv.finished or inv.abandoned_at is not None:
                return
            self._abandon(inv, reason="deadline")

        self._deadline_timers[inv.invocation_id] = self.events.schedule_in(
            res.deadline_factor * self.app.sla, fire
        )

    def _release_open(self, inv: Invocation, now: float) -> None:
        """Common teardown of a given-up invocation (abandon or shed):
        demand charges of unstarted stages released, queue entries and the
        deadline timer cleared, the open-invocation count decremented."""
        inv.abandoned_at = now
        handle = self._deadline_timers.pop(inv.invocation_id, None)
        if handle is not None:
            handle.cancel()
        for fn in self.app.function_names:
            rec = inv.stages.get(fn)
            started = rec is not None and rec.started_at is not None
            if not started:
                self.pending_stage_demand[fn] -= 1
                if (
                    rec is not None
                    and rec.ready_at is not None
                    and rec.finished_at is None
                ):
                    try:
                        self.queues[fn].remove(inv)
                    except ValueError:
                        pass  # ready but not queued (retry backoff pending)
        self._open_invocations -= 1

    def _abandon(self, inv: Invocation, *, reason: str) -> None:
        """Give up on an invocation: deadline passed or retries exhausted.

        Unstarted stages release their demand charges and leave the
        queues; a stage currently executing is left to finish (its result
        is discarded in :meth:`_stage_done`).  The invocation counts as
        ``timed_out`` — disjoint from both completed and ``unfinished``.
        """
        if inv.finished or inv.abandoned_at is not None:
            return
        now = self.events.now
        self._release_open(inv, now)
        self.metrics.timed_out += 1
        if self._rec is not None:
            self._rec.emit(
                InvocationTimedOut(
                    t=now,
                    app=self.app.name,
                    invocation_id=inv.invocation_id,
                    reason=reason,
                    age=now - inv.arrival,
                )
            )
        if self._on_done is not None:
            self._on_done(inv, "timed_out")

    def _activate_fallback(
        self,
        fn: str,
        from_config: HardwareConfig,
        to_config: HardwareConfig,
        *,
        reason: str,
    ) -> None:
        """Record one graceful-degradation step (crash loop / starvation)."""
        self.metrics.fallbacks += 1
        if self._rec is not None:
            self._rec.emit(
                FallbackActivated(
                    t=self.events.now,
                    app=self.app.name,
                    function=fn,
                    from_config=from_config.key,
                    to_config=to_config.key,
                    reason=reason,
                )
            )

    # ------------------------------------------------------------- overload
    def _shed(self, inv: Invocation, *, function: str, reason: str) -> None:
        """Drop one invocation under overload (bounded-queue shedding).

        Mirrors :meth:`_abandon` — demand charges released, queues
        cleared, deadline timer cancelled — but counts ``shed``, the
        overload plane's own disposition, disjoint from ``timed_out``.
        """
        if inv.finished or inv.abandoned_at is not None:
            return
        now = self.events.now
        self._release_open(inv, now)
        self.metrics.shed += 1
        if self._rec is not None:
            self._rec.emit(
                InvocationShed(
                    t=now,
                    app=self.app.name,
                    invocation_id=inv.invocation_id,
                    function=function,
                    reason=reason,
                    age=now - inv.arrival,
                )
            )
        self._maybe_resubmit(inv, now)
        if self._on_done is not None:
            self._on_done(inv, "shed")

    def _breaker_failure(self, fn: str) -> None:
        """Count one consecutive batch failure toward the breaker."""
        state = self._breaker_state.get(fn)
        if state == "probing":
            # The half-open probe failed: straight back to open.
            self._breaker_open(fn)
            return
        if state == "open":
            return
        fails = self._breaker_fails.get(fn, 0) + 1
        self._breaker_fails[fn] = fails
        if fails >= self._overload.breaker_failures:
            self._breaker_open(fn)

    def _breaker_open(self, fn: str) -> None:
        """Open the circuit: stop dispatching, probe after the cool-down."""
        spec = self._overload
        self._breaker_state[fn] = "open"
        self._breaker_fails[fn] = 0
        self._activate_fallback(
            fn,
            self.directives[fn].config,
            self._degraded_config,
            reason="circuit-open",
        )

        def fire() -> None:
            if self._shutting_down:
                return
            if self._breaker_state.get(fn) == "open":
                self._breaker_state[fn] = "half-open"
                self._dispatch(fn)

        self.events.schedule_in(spec.breaker_cooldown, fire)

    def _breaker_success(self, fn: str) -> None:
        """A batch finished cleanly: reset the count, close the circuit."""
        if self._breaker_fails.get(fn):
            self._breaker_fails[fn] = 0
        if self._breaker_state.pop(fn, None) is not None:
            self._activate_fallback(
                fn,
                self._degraded_config,
                self.directives[fn].config,
                reason="circuit-close",
            )

    def _evaluate_brownout(self) -> None:
        """Window-tick brownout check: degrade on queue delay, restore on
        recovery.

        The head-of-queue wait of each function is compared against the
        engage threshold; crossing it swaps the standing directive's
        configuration to the degraded tier (the policy's directive is
        saved and restored once the delay recedes below the hysteresis
        threshold).  A policy re-issuing its own directive while a
        brownout is active takes ownership back.
        """
        spec = self._overload
        now = self.events.now
        degraded = self._degraded_config
        for fn, queue in self.queues.items():
            delay = 0.0
            if queue:
                head_ready = queue[0].stage(fn).ready_at
                if head_ready is not None:
                    delay = now - head_ready
            directive = self.directives[fn]
            saved = self._brownout_saved.get(fn)
            if saved is None:
                if (
                    delay > spec.brownout_queue_delay
                    and directive.config != degraded
                ):
                    self._brownout_saved[fn] = directive
                    self.directives[fn] = dataclasses.replace(
                        directive, config=degraded
                    )
                    self._activate_fallback(
                        fn, directive.config, degraded, reason="brownout"
                    )
                    self.record_directive(
                        fn,
                        self.directives[fn],
                        f"brownout: queue delay {delay:.2f}s > "
                        f"{spec.brownout_queue_delay:.2f}s",
                    )
            elif directive.config != degraded:
                # The policy replaced the degraded directive meanwhile;
                # it owns the function again.
                del self._brownout_saved[fn]
            elif delay <= spec.brownout_recover_delay:
                del self._brownout_saved[fn]
                self.directives[fn] = saved
                self._activate_fallback(
                    fn, degraded, saved.config, reason="brownout-restore"
                )
                self.record_directive(
                    fn,
                    saved,
                    f"brownout recovered: queue delay {delay:.2f}s <= "
                    f"{spec.brownout_recover_delay:.2f}s",
                )

    # ------------------------------------------------------------- lifecycle
    def _launch(
        self, fn: str, config: HardwareConfig, *, prewarm: bool = False
    ) -> Instance | None:
        placement = self.cluster.try_allocate(config)
        if placement is None:
            res = self._resilience
            if (
                res is not None
                and res.fallback_after is not None
                and config.backend is Backend.GPU
            ):
                # GPU starvation: after `fallback_after` consecutive failed
                # GPU placements for this function, degrade to the CPU
                # fallback configuration rather than queueing forever.
                starved = self._gpu_starved.get(fn, 0) + 1
                self._gpu_starved[fn] = starved
                fallback = self._fallback_config
                if starved >= res.fallback_after and fallback != config:
                    self._gpu_starved[fn] = 0
                    self._activate_fallback(
                        fn, config, fallback, reason="gpu-starvation"
                    )
                    return self._launch(fn, fallback, prewarm=prewarm)
            self.pending_launches[fn].append(config)
            return None
        if self._gpu_starved and config.backend is Backend.GPU:
            self._gpu_starved.pop(fn, None)
        oracle = self.oracles[fn]
        swapped = (
            config.backend is Backend.GPU
            and oracle.supports_swap
            and self.runtime.residency.resident((self.app.name, fn))
        )
        if swapped:
            # The model's weights are host-resident: page them onto the
            # GPU (swap-in, ≪ cold start) instead of re-initializing.
            init = oracle.swap_in_time(config)
            self.runtime.residency.touch((self.app.name, fn))
        else:
            init = oracle.init_time(config)
        inst = Instance(
            function=fn,
            config=config,
            placement=placement,
            launched_at=self.events.now,
            init_duration=init,
            instance_id=self.runtime.next_instance_id(),
            prewarmed=prewarm,
            swapped_in=swapped,
        )
        self.pools[fn].add(inst)
        self.metrics.initializations += 1
        if swapped:
            self.metrics.swap_ins += 1
        if self._rec is not None:
            self._rec.emit(
                InstanceLaunched(
                    t=self.events.now,
                    app=self.app.name,
                    function=fn,
                    instance_id=inst.instance_id,
                    config=config.key,
                    init_duration=init,
                    prewarm=prewarm,
                )
            )
            if swapped:
                self._rec.emit(
                    InstanceSwappedIn(
                        t=self.events.now,
                        app=self.app.name,
                        function=fn,
                        instance_id=inst.instance_id,
                        config=config.key,
                        swap_duration=init,
                    )
                )
        self.events.schedule_in(init, lambda: self._warmup_done(inst))
        return inst

    def _warmup_done(self, inst: Instance) -> None:
        if not inst.is_live:
            return
        rate = self.init_failure_rate
        if self._faults is not None:
            extra = self._faults.extra_init_failure_rate(self.events.now)
            if extra > 0.0:
                rate = min(rate + extra, 0.999999)
        if rate > 0.0 and self._fault_rng.random() < rate:
            # Initialization failed (image pull error, OOM during model
            # load, ...): the container is torn down — billed for the failed
            # attempt — and replaced, as a real platform's crash-loop would.
            self.metrics.failed_initializations += 1
            fn, cfg = inst.function, inst.config
            if self._rec is not None:
                self._rec.emit(
                    InstanceInitFailed(
                        t=self.events.now,
                        app=self.app.name,
                        function=fn,
                        instance_id=inst.instance_id,
                    )
                )
            self._terminate(inst, reason="init-failed")
            if not self._shutting_down:
                self._relaunch_after_init_failure(fn, cfg)
            return
        if self._crash_loops:
            self._crash_loops.pop(inst.function, None)
        if (
            inst.config.backend is Backend.GPU
            and not inst.swapped_in
            and self.oracles[inst.function].supports_swap
        ):
            # A completed full GPU initialization leaves the weights pinned
            # in host memory: later launches page them in at swap cost.
            # LRU admission can push other residents out (possibly another
            # tenant's) — their next launch cold-starts again.
            profile = self.oracles[inst.function].profile
            evicted = self.runtime.residency.admit(
                (self.app.name, inst.function), profile.mem_knee_gb
            )
            if self._rec is not None:
                for victim_app, victim_fn in evicted:
                    self._rec.emit(
                        ModelEvicted(
                            t=self.events.now,
                            app=victim_app,
                            function=victim_fn,
                        )
                    )
        inst.mark_warm(self.events.now)
        self.pools[inst.function].transition(inst, InstanceState.INITIALIZING)
        self._dispatch(inst.function)
        if inst.state is InstanceState.IDLE:
            self._arm_expiry(inst)

    def _relaunch_after_init_failure(
        self, fn: str, config: HardwareConfig
    ) -> None:
        """Replace a failed initialization, subject to the crash-loop cap.

        Without a fault plan this relaunches unconditionally (the legacy
        behaviour).  With resilience active, `max_crash_loop` consecutive
        failures stop the loop: if a fallback configuration applies, the
        function degrades to it; otherwise relaunching stops and
        demand-driven dispatch or min-warm enforcement tries again later.
        """
        res = self._resilience
        if res is None:
            self._launch(fn, config)
            return
        count = self._crash_loops.get(fn, 0) + 1
        self._crash_loops[fn] = count
        if count < res.max_crash_loop:
            self._launch(fn, config)
            return
        fallback = self._fallback_config
        if (
            res.fallback_after is not None
            and fallback is not None
            and config != fallback
        ):
            self._crash_loops[fn] = 0
            self._activate_fallback(fn, config, fallback, reason="crash-loop")
            self._launch(fn, fallback)

    def _arm_expiry(self, inst: Instance) -> None:
        directive = self.directives[inst.function]
        keep_alive = directive.keep_alive
        if inst.batches_served == 0:
            # Freshly pre-warmed, still waiting for its predicted arrival.
            keep_alive = max(keep_alive, directive.warm_grace)
        if math.isinf(keep_alive):
            return
        if inst.expiry_timer is not None:
            inst.expiry_timer.cancel()

        def fire() -> None:
            inst.expiry_timer = None
            if inst.state is InstanceState.IDLE:
                self._terminate(inst, reason="keep-alive-expired")

        inst.expiry_timer = self.events.schedule_in(max(keep_alive, 0.0), fire)

    def _terminate(self, inst: Instance, *, reason: str = "shutdown") -> None:
        if not inst.is_live:
            return
        if inst.expiry_timer is not None:
            inst.expiry_timer.cancel()
            inst.expiry_timer = None
        prev_state = inst.state
        inst.mark_terminated(self.events.now)
        self.cluster.release(inst.placement)
        usage = InstanceUsage.from_instance(inst, self.events.now)
        self.metrics.record_instance(usage)
        if self._rec is not None:
            if (
                inst.prewarmed
                and inst.batches_served == 0
                and reason in _GENUINE_EXPIRY
            ):
                self._rec.emit(
                    PrewarmMiss(
                        t=self.events.now,
                        app=self.app.name,
                        function=inst.function,
                        instance_id=inst.instance_id,
                        idle_seconds=usage.idle_seconds,
                    )
                )
            self._rec.emit(
                InstanceExpired(
                    t=self.events.now,
                    app=self.app.name,
                    function=inst.function,
                    instance_id=inst.instance_id,
                    config=inst.config.key,
                    reason=reason,
                    lifetime=usage.lifetime,
                    init_seconds=usage.init_seconds,
                    busy_seconds=usage.busy_seconds,
                    idle_seconds=usage.idle_seconds,
                    cost=usage.cost,
                    batches_served=usage.batches_served,
                    invocations_served=usage.invocations_served,
                )
            )
        self.pools[inst.function].remove(inst, prev_state)
        self._retry_pending_launches()

    def _retry_pending_launches(self) -> None:
        if self._shutting_down:
            return
        for fn, pending in self.pending_launches.items():
            while pending:
                config = pending[0]
                placement = self.cluster.try_allocate(config)
                if placement is None:
                    # This function's head launch does not fit, but another
                    # function's (smaller) pending launch still might: move
                    # on rather than blocking the whole retry pass.
                    break
                self.cluster.release(placement)  # _launch re-allocates
                pending.popleft()
                self._launch(fn, config)

    def schedule_warmup(
        self,
        function: str,
        start_time: float,
        config: HardwareConfig | None = None,
        count: int = 1,
    ) -> None:
        """Launch up to ``count`` instances at ``start_time`` (deduplicated)."""
        if function not in self.app.function_names:
            raise KeyError(f"unknown function {function!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if self._rec is not None:
            self._rec.emit(
                PrewarmScheduled(
                    t=self.events.now,
                    app=self.app.name,
                    function=function,
                    fire_at=start_time,
                    count=count,
                    config=config.key if config is not None else "directive",
                )
            )

        def fire() -> None:
            directive = self.directives[function]
            cfg = config or directive.config
            uncommitted = self.pools[function].uncommitted_count(config)
            # Instances already owed to open invocations — queued here or
            # still traversing upstream stages — don't count as available
            # for the upcoming invocation this warm-up targets.
            claimed = math.ceil(
                self.pending_stage_demand[function] / directive.batch
            )
            available = max(0, uncommitted - claimed)
            for _ in range(max(0, count - available)):
                self._launch(function, cfg, prewarm=True)

        self.events.schedule(start_time, fire)

    # ------------------------------------------------------------- windows
    def _append_window_count(self, arrivals: int) -> None:
        if self._counts_len == self._counts_buf.size:
            grown = np.zeros(self._counts_buf.size * 2, dtype=np.int64)
            grown[: self._counts_len] = self._counts_buf
            self._counts_buf = grown
        self._counts_buf[self._counts_len] = arrivals
        self._counts_len += 1

    def counts_view(self) -> np.ndarray:
        """Read-only view of all completed per-window arrival counts."""
        view = self._counts_buf[: self._counts_len]
        view.setflags(write=False)
        return view

    def _schedule_tick(self, k: int) -> None:
        self.events.schedule(
            k * self.window,
            self._make_window_tick(k),
            seq=self._tick_seq_base + k - 1,
        )

    def _make_window_tick(self, k: int):
        def fire() -> None:
            if k < self._n_windows:
                self._schedule_tick(k + 1)
            arrivals = self._current_window_count
            self._append_window_count(arrivals)
            self.metrics.arrival_samples.append((self.events.now, arrivals))
            self._current_window_count = 0
            cpu_pods = gpu_pods = 0
            for pool in self.pools.values():
                cpu, gpu = pool.backend_live_counts()
                cpu_pods += cpu
                gpu_pods += gpu
            self.metrics.pod_samples.append((self.events.now, cpu_pods, gpu_pods))
            if self._rec is not None:
                self._rec.emit(
                    WindowTick(
                        t=self.events.now,
                        app=self.app.name,
                        window_index=k - 1,
                        arrivals=arrivals,
                        cpu_pods=cpu_pods,
                        gpu_pods=gpu_pods,
                    )
                )
            self.policy.on_window(self.events.now, self.ctx)
            if self._overload is not None and self._overload.browns_out:
                self._evaluate_brownout()
            self._enforce_min_warm()

        return fire

    def _enforce_min_warm(self) -> None:
        now = self.events.now
        for fn, directive in self.directives.items():
            pool = self.pools[fn]
            cfg = directive.config
            # Snapshot before deficit launches: the sweep's fleet-size floor
            # must not count instances launched within this very pass.
            live_n = pool.live_count()
            deficit = directive.min_warm - pool.live_count(cfg)
            for _ in range(deficit):
                self._launch(fn, cfg)
            if deficit < 0 and math.isinf(directive.keep_alive):
                # Always-on fleets are sized purely by min_warm: shed idle
                # instances beyond the target.
                excess = -deficit
                for inst in pool.idle_sorted(config=cfg)[:excess]:
                    self._terminate(inst, reason="scale-in")
            # Retire stale-config idle instances once the directive's own
            # configuration has *warm* coverage — retiring against merely
            # initializing replacements opens a cold window.
            if pool.warm_count(cfg) >= max(directive.min_warm, 1):
                for inst in pool.idle_sorted():
                    if inst.config != cfg:
                        self._terminate(inst, reason="stale-config")
            elif not math.isinf(directive.keep_alive):
                # Sweep idle instances whose expiry timer was armed under a
                # previous (longer or infinite) keep-alive directive.
                for inst in pool.idle_sorted():
                    grace = directive.keep_alive
                    if inst.batches_served == 0:
                        grace = max(grace, directive.warm_grace)
                    if (
                        now - inst.idle_since > grace + 1e-9
                        and live_n > directive.min_warm
                    ):
                        self._terminate(inst, reason="keep-alive-sweep")
                        live_n -= 1

    # ------------------------------------------------------------- teardown
    def _finalize(self) -> None:
        self._shutting_down = True
        now = self.events.now
        # Deadline timers of invocations still open at the horizon would
        # otherwise survive the run as leaked handles (their invocations
        # seal as `unfinished`, so the timers can never resolve them).
        if self._deadline_timers:
            for handle in self._deadline_timers.values():
                handle.cancel()
            self._deadline_timers.clear()
        for pool in self.pools.values():
            for inst in list(pool):
                if inst.is_live:
                    self._terminate(inst, reason="shutdown")
        self.metrics.seal(duration=now, unfinished=self._open_invocations)
        if self._rec is not None:
            self._rec.emit(
                RunFinished(
                    t=now,
                    app=self.app.name,
                    duration=now,
                    unfinished=self._open_invocations,
                    completed=self.metrics.n_completed,
                    latency_sketch=(
                        self.metrics.latency_sketch.to_flat()
                        if self._sketch
                        else ()
                    ),
                )
            )

"""Per-application gateway: queues, directives, instance pools, metrics.

A :class:`Gateway` owns everything that belongs to *one* application being
served — its invocation queues, standing :class:`FunctionDirective`\\ s,
per-function :class:`~repro.simulator.pools.InstancePool` indexes, oracle
performance models and :class:`~repro.simulator.metrics.RunMetrics` — and
drives that application's stage dispatch, instance lifecycle and window
ticks.  The shared *mechanism* it draws on (the simulated clock, the event
heap, cluster capacity) lives in :class:`~repro.simulator.runtime.Runtime`;
several gateways bound to one runtime co-run on a single timeline and
back-pressure each other through the shared cluster, which is the paper's
§VII-A evaluation setting (three applications, one 8-machine testbed).

This mirrors the paper's split between the Gateway + per-instance Agent
(per-application, §VI) and the platform underneath: the gateway is
responsible for mechanism — instance lifecycle, queueing, batching,
capacity requests, billing records — while the policy supplies *decisions*
through :class:`~repro.simulator.invocation.FunctionDirective` updates and
pre-warm requests.

Stage dispatch rules (the Gateway + per-instance Agent of §VI):

- a stage becomes *ready* when all its DAG predecessors finished;
- ready stages queue per function; an idle instance takes up to
  ``directive.batch`` queued stages as one batch;
- if no instance is live, a cold start is triggered on the directive's
  configuration; stages served by an instance that was not warm when they
  became ready count as cold (re)initializations (Fig. 9b);
- idle instances expire after ``directive.keep_alive`` seconds;
- pre-warm requests launch instances at a policy-chosen time so
  initialization overlaps upstream execution (§V-B1).

Hot-path structure (see ``docs/performance.md``): instance lifecycle state
lives in per-function :class:`~repro.simulator.pools.InstancePool` indexes,
arrivals and window ticks are *streamed* (each event schedules its
successor on a pre-reserved sequence block, keeping the event heap
O(live events) instead of O(trace length)), and keep-alive expiry timers
are cancelled on dispatch instead of left to fire as dead closures.

Observability (see ``docs/observability.md``): every point that mutates a
:class:`~repro.simulator.metrics.RunMetrics` counter also emits a typed
:mod:`repro.telemetry.events` event through the runtime's recorder, so
the metrics are reconstructible from a recorded trace
(:func:`repro.telemetry.aggregate.aggregate`).  Emission is guarded by
one ``self._rec is not None`` check per site; under the default
:class:`~repro.telemetry.recorder.NullRecorder` no event object is ever
built and the hot loop is unchanged.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.dag.graph import AppDAG
from repro.hardware.configs import Backend, HardwareConfig
from repro.hardware.perfmodel import GroundTruthPerformance
from repro.simulator.container import Instance, InstanceState
from repro.simulator.invocation import FunctionDirective, Invocation
from repro.simulator.metrics import InstanceUsage, RunMetrics
from repro.simulator.pools import InstancePool
from repro.telemetry.events import (
    Arrival,
    ColdStart,
    DirectiveChanged,
    InstanceExpired,
    InstanceInitFailed,
    InstanceLaunched,
    InvocationFinished,
    PrewarmHit,
    PrewarmMiss,
    PrewarmScheduled,
    RunFinished,
    RunStarted,
    SlaViolation,
    StageFinish,
    StageReady,
    StageStart,
    WindowTick,
)
from repro.utils.rng import ensure_rng
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.policies.base import Policy
    from repro.simulator.runtime import Runtime


class SimulationContext:
    """The policy's window into its application's running gateway."""

    def __init__(self, gateway: "Gateway") -> None:
        self._gw = gateway

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._gw.events.now

    @property
    def app(self) -> AppDAG:
        """The application being served."""
        return self._gw.app

    @property
    def window(self) -> float:
        """Control-window length in seconds (1 s in the paper)."""
        return self._gw.window

    def directive(self, function: str) -> FunctionDirective:
        """Current standing directive for ``function``."""
        return self._gw.directives[function]

    def set_directive(
        self,
        function: str,
        directive: FunctionDirective,
        reason: str = "",
    ) -> None:
        """Replace the standing directive for ``function``.

        ``reason`` is the policy's explanation for the change; it is
        recorded on the :class:`~repro.telemetry.events.DirectiveChanged`
        event and surfaces in the decision-audit view
        (:func:`repro.telemetry.audit.decision_audit`).
        """
        if function not in self._gw.app.function_names:
            raise KeyError(f"unknown function {function!r}")
        self._gw.directives[function] = directive
        self._gw.record_directive(function, directive, reason)

    def schedule_warmup(
        self,
        function: str,
        start_time: float,
        config: HardwareConfig | None = None,
        count: int = 1,
    ) -> None:
        """Ask the gateway to have ``count`` instances warming from ``start_time``.

        Duplicate requests are absorbed: at fire time the gateway only
        launches instances beyond those already initializing or idle.
        """
        self._gw.schedule_warmup(function, start_time, config, count)

    def counts_history(self) -> np.ndarray:
        """Invocation counts of all *completed* windows so far."""
        return np.array(self._gw.window_counts, dtype=int)

    def live_count(
        self, function: str, config: HardwareConfig | None = None
    ) -> int:
        """Instances currently holding resources for ``function``.

        With ``config`` given, count only instances of that configuration.
        """
        return self._gw.pools[function].live_count(config)

    def idle_count(self, function: str) -> int:
        """Warm idle instances for ``function``."""
        return self._gw.pools[function].idle_count()

    def queue_length(self, function: str) -> int:
        """Stages queued for ``function``."""
        return len(self._gw.queues[function])


class Gateway:
    """Serves one application's trace on a shared :class:`Runtime`."""

    def __init__(
        self,
        app: AppDAG,
        trace: Trace,
        policy: "Policy",
        *,
        runtime: "Runtime",
        window: float = 1.0,
        seed: int = 0,
        noisy: bool = True,
        init_failure_rate: float = 0.0,
        gpu_contention: float = 0.0,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if not 0.0 <= init_failure_rate < 1.0:
            raise ValueError(
                f"init_failure_rate must be in [0, 1), got {init_failure_rate}"
            )
        if gpu_contention < 0.0:
            raise ValueError(
                f"gpu_contention must be >= 0, got {gpu_contention}"
            )
        self.app = app
        self.trace = trace
        self.policy = policy
        self.runtime = runtime
        self.cluster = runtime.cluster
        self.events = runtime.events
        # Telemetry: `None` under the NullRecorder so every emission point
        # is a single attribute check and no event object is built.
        self._rec = runtime.recorder if runtime.recorder.enabled else None
        self.window = float(window)
        self.seed = seed
        self.init_failure_rate = float(init_failure_rate)
        self.gpu_contention = float(gpu_contention)
        root = ensure_rng(seed)
        self._fault_rng = np.random.default_rng(int(root.integers(2**32)))
        self.oracles: dict[str, GroundTruthPerformance] = {
            spec.name: GroundTruthPerformance(
                spec.profile, rng=int(root.integers(2**32)), noisy=noisy
            )
            for spec in app.specs
        }
        self.metrics = RunMetrics(app=app.name, policy=policy.name, sla=app.sla)
        self.directives: dict[str, FunctionDirective] = {}
        self.pools: dict[str, InstancePool] = {
            f: InstancePool() for f in app.function_names
        }
        self.queues: dict[str, deque[Invocation]] = {
            f: deque() for f in app.function_names
        }
        self.pending_launches: dict[str, deque[HardwareConfig]] = {
            f: deque() for f in app.function_names
        }
        self.window_counts: list[int] = []
        self.pending_stage_demand: dict[str, int] = {
            f: 0 for f in app.function_names
        }
        self._current_window_count = 0
        self._open_invocations = 0
        self._shutting_down = False
        self._arrival_seq_base = 0
        self._tick_seq_base = 0
        self._n_windows = 0
        self.ctx = SimulationContext(self)

    # ------------------------------------------------------------------ run
    def setup(self) -> None:
        """Register the policy and start the arrival / window-tick streams.

        Arrivals and ticks are *streamed*: only the next event of each chain
        sits in the heap, and it schedules its successor when it fires.
        Sequence blocks are reserved up front so simultaneous events
        tie-break exactly as a fully pre-pushed schedule would.
        """
        if self._rec is not None:
            self._rec.emit(
                RunStarted(
                    t=self.events.now,
                    app=self.app.name,
                    policy=self.policy.name,
                    sla=self.app.sla,
                    window=self.window,
                    functions=tuple(self.app.function_names),
                )
            )
        self.policy.on_register(self.app, self.ctx)
        for fn in self.app.function_names:
            if fn not in self.directives:
                raise RuntimeError(
                    f"policy {self.policy.name!r} left function {fn!r} without a directive"
                )
        n_arrivals = len(self.trace)
        self._arrival_seq_base = self.events.reserve(n_arrivals)
        self._n_windows = int(math.ceil(self.trace.duration / self.window))
        self._tick_seq_base = self.events.reserve(self._n_windows)
        if n_arrivals:
            self._schedule_arrival(0)
        if self._n_windows:
            self._schedule_tick(1)

    def finalize(self) -> RunMetrics:
        """Terminate remaining instances and seal the metrics."""
        self._finalize()
        return self.metrics

    @property
    def open_invocations(self) -> int:
        """Invocations that have arrived but not completed."""
        return self._open_invocations

    def record_directive(
        self, function: str, directive: FunctionDirective, reason: str
    ) -> None:
        """Emit the ``DirectiveChanged`` audit event for one update."""
        if self._rec is not None:
            self._rec.emit(
                DirectiveChanged(
                    t=self.events.now,
                    app=self.app.name,
                    function=function,
                    config=directive.config.key,
                    keep_alive=directive.keep_alive,
                    batch=directive.batch,
                    min_warm=directive.min_warm,
                    warm_grace=directive.warm_grace,
                    reason=reason,
                )
            )

    # ------------------------------------------------------------- arrivals
    def _schedule_arrival(self, index: int) -> None:
        t = float(self.trace.times[index])
        self.events.schedule(
            t, self._make_arrival(t, index), seq=self._arrival_seq_base + index
        )

    def _make_arrival(self, t: float, index: int):
        def fire() -> None:
            if index + 1 < len(self.trace):
                self._schedule_arrival(index + 1)
            inv = Invocation(
                app=self.app.name,
                arrival=t,
                invocation_id=self.runtime.next_invocation_id(),
            )
            inv.remaining = len(self.app)  # type: ignore[attr-defined]
            for fn in self.app.function_names:
                self.pending_stage_demand[fn] += 1
            self.metrics.invocations.append(inv)
            self._open_invocations += 1
            self._current_window_count += 1
            if self._rec is not None:
                self._rec.emit(
                    Arrival(
                        t=t, app=self.app.name, invocation_id=inv.invocation_id
                    )
                )
            self.policy.on_arrival(inv, self.ctx)
            for fn in self.app.sources():
                self._stage_ready(inv, fn)

        return fire

    def _stage_ready(self, inv: Invocation, fn: str) -> None:
        inv.stage(fn).ready_at = self.events.now
        if self._rec is not None:
            self._rec.emit(
                StageReady(
                    t=self.events.now,
                    app=self.app.name,
                    invocation_id=inv.invocation_id,
                    function=fn,
                )
            )
        self.queues[fn].append(inv)
        self._dispatch(fn)

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, fn: str) -> None:
        directive = self.directives[fn]
        queue = self.queues[fn]
        pool = self.pools[fn]
        while queue:
            inst = pool.pick_idle(directive.config)
            if inst is None:
                break
            # The batch limit is sized for the directive's configuration; a
            # stale-config instance serves sequentially so a large batch
            # cannot blow its (slower) stage latency.
            limit = directive.batch if inst.config == directive.config else 1
            batch_n = min(limit, len(queue))
            items = [queue.popleft() for _ in range(batch_n)]
            self._execute(inst, items)
        if queue:
            # Cover the backlog with launches, accounting for instances that
            # are already initializing and will drain the queue when warm.
            initializing = pool.initializing_count() + len(
                self.pending_launches[fn]
            )
            capacity = initializing * directive.batch
            shortfall = len(queue) - capacity
            if shortfall > 0:
                for _ in range(math.ceil(shortfall / directive.batch)):
                    self._launch(fn, directive.config)

    def _execute(self, inst: Instance, items: list[Invocation]) -> None:
        now = self.events.now
        batch_n = len(items)
        exec_time = self.oracles[inst.function].inference_time(
            inst.config, batch_n
        )
        if self.gpu_contention > 0.0 and inst.config.backend is Backend.GPU:
            # MPS co-location slowdown (§IV-A2: PCIe/GPU-memory contention
            # between instances sharing a device): scale with the fraction
            # of the device allocated to *other* instances.
            machine = self.cluster.machines[inst.placement.machine]
            others = machine.gpu_slots_used - inst.config.mps_slots
            share = max(0, others) / machine.gpu_slots_total
            exec_time *= 1.0 + self.gpu_contention * share
        inst.mark_busy(now, batch_n)
        self.pools[inst.function].transition(inst, InstanceState.IDLE)
        if inst.expiry_timer is not None:
            inst.expiry_timer.cancel()
            inst.expiry_timer = None
        self.pending_stage_demand[inst.function] -= batch_n
        for inv in items:
            rec = inv.stage(inst.function)
            rec.started_at = now
            rec.instance_id = inst.instance_id
            rec.batch = batch_n
            rec.cold_start = inst.warm_at > (rec.ready_at or 0.0)
        self.metrics.stage_executions += batch_n
        self.metrics.cold_stage_executions += sum(
            1 for inv in items if inv.stage(inst.function).cold_start
        )
        if self._rec is not None:
            if inst.prewarmed and inst.batches_served == 1:
                self._rec.emit(
                    PrewarmHit(
                        t=now,
                        app=self.app.name,
                        function=inst.function,
                        instance_id=inst.instance_id,
                        idle_wait=now - inst.warm_at,
                    )
                )
            for inv in items:
                rec = inv.stage(inst.function)
                self._rec.emit(
                    StageStart(
                        t=now,
                        app=self.app.name,
                        invocation_id=inv.invocation_id,
                        function=inst.function,
                        instance_id=inst.instance_id,
                        batch=batch_n,
                        cold=rec.cold_start,
                    )
                )
                if rec.cold_start:
                    self._rec.emit(
                        ColdStart(
                            t=now,
                            app=self.app.name,
                            invocation_id=inv.invocation_id,
                            function=inst.function,
                            instance_id=inst.instance_id,
                            wait=now - (rec.ready_at or 0.0),
                        )
                    )
        self.events.schedule_in(
            exec_time, lambda: self._stage_done(inst, items, exec_time)
        )

    def _stage_done(
        self, inst: Instance, items: list[Invocation], exec_time: float
    ) -> None:
        now = self.events.now
        inst.mark_idle(now, exec_time)
        fn = inst.function
        self.pools[fn].transition(inst, InstanceState.BUSY)
        for inv in items:
            inv.stage(fn).finished_at = now
            inv.remaining -= 1  # type: ignore[attr-defined]
            if self._rec is not None:
                self._rec.emit(
                    StageFinish(
                        t=now,
                        app=self.app.name,
                        invocation_id=inv.invocation_id,
                        function=fn,
                        instance_id=inst.instance_id,
                    )
                )
            self.policy.on_stage_complete(inv, fn, self.ctx)
            for succ in self.app.successors(fn):
                preds = self.app.predecessors(succ)
                if all(
                    inv.stage(p).finished_at is not None for p in preds
                ):
                    self._stage_ready(inv, succ)
            if inv.remaining == 0:  # type: ignore[attr-defined]
                inv.completed_at = now
                self._open_invocations -= 1
                if self._rec is not None:
                    latency = now - inv.arrival
                    self._rec.emit(
                        InvocationFinished(
                            t=now,
                            app=self.app.name,
                            invocation_id=inv.invocation_id,
                            latency=latency,
                        )
                    )
                    # Same epsilon as RunMetrics.violation_ratio.
                    if latency > self.app.sla + 1e-9:
                        self._rec.emit(
                            SlaViolation(
                                t=now,
                                app=self.app.name,
                                invocation_id=inv.invocation_id,
                                latency=latency,
                                sla=self.app.sla,
                            )
                        )
        self._dispatch(fn)
        if inst.state is InstanceState.IDLE:
            self._arm_expiry(inst)

    # ------------------------------------------------------------- lifecycle
    def _launch(
        self, fn: str, config: HardwareConfig, *, prewarm: bool = False
    ) -> Instance | None:
        placement = self.cluster.try_allocate(config)
        if placement is None:
            self.pending_launches[fn].append(config)
            return None
        init = self.oracles[fn].init_time(config)
        inst = Instance(
            function=fn,
            config=config,
            placement=placement,
            launched_at=self.events.now,
            init_duration=init,
            prewarmed=prewarm,
        )
        self.pools[fn].add(inst)
        self.metrics.initializations += 1
        if self._rec is not None:
            self._rec.emit(
                InstanceLaunched(
                    t=self.events.now,
                    app=self.app.name,
                    function=fn,
                    instance_id=inst.instance_id,
                    config=config.key,
                    init_duration=init,
                    prewarm=prewarm,
                )
            )
        self.events.schedule_in(init, lambda: self._warmup_done(inst))
        return inst

    def _warmup_done(self, inst: Instance) -> None:
        if not inst.is_live:
            return
        if (
            self.init_failure_rate > 0.0
            and self._fault_rng.random() < self.init_failure_rate
        ):
            # Initialization failed (image pull error, OOM during model
            # load, ...): the container is torn down — billed for the failed
            # attempt — and replaced, as a real platform's crash-loop would.
            self.metrics.failed_initializations += 1
            fn, cfg = inst.function, inst.config
            if self._rec is not None:
                self._rec.emit(
                    InstanceInitFailed(
                        t=self.events.now,
                        app=self.app.name,
                        function=fn,
                        instance_id=inst.instance_id,
                    )
                )
            self._terminate(inst, reason="init-failed")
            if not self._shutting_down:
                self._launch(fn, cfg)
            return
        inst.mark_warm(self.events.now)
        self.pools[inst.function].transition(inst, InstanceState.INITIALIZING)
        self._dispatch(inst.function)
        if inst.state is InstanceState.IDLE:
            self._arm_expiry(inst)

    def _arm_expiry(self, inst: Instance) -> None:
        directive = self.directives[inst.function]
        keep_alive = directive.keep_alive
        if inst.batches_served == 0:
            # Freshly pre-warmed, still waiting for its predicted arrival.
            keep_alive = max(keep_alive, directive.warm_grace)
        if math.isinf(keep_alive):
            return
        if inst.expiry_timer is not None:
            inst.expiry_timer.cancel()

        def fire() -> None:
            inst.expiry_timer = None
            if inst.state is InstanceState.IDLE:
                self._terminate(inst, reason="keep-alive-expired")

        inst.expiry_timer = self.events.schedule_in(max(keep_alive, 0.0), fire)

    def _terminate(self, inst: Instance, *, reason: str = "shutdown") -> None:
        if not inst.is_live:
            return
        if inst.expiry_timer is not None:
            inst.expiry_timer.cancel()
            inst.expiry_timer = None
        prev_state = inst.state
        inst.mark_terminated(self.events.now)
        self.cluster.release(inst.placement)
        usage = InstanceUsage.from_instance(inst, self.events.now)
        self.metrics.instances.append(usage)
        if self._rec is not None:
            if (
                inst.prewarmed
                and inst.batches_served == 0
                and reason != "init-failed"
            ):
                self._rec.emit(
                    PrewarmMiss(
                        t=self.events.now,
                        app=self.app.name,
                        function=inst.function,
                        instance_id=inst.instance_id,
                        idle_seconds=usage.idle_seconds,
                    )
                )
            self._rec.emit(
                InstanceExpired(
                    t=self.events.now,
                    app=self.app.name,
                    function=inst.function,
                    instance_id=inst.instance_id,
                    config=inst.config.key,
                    reason=reason,
                    lifetime=usage.lifetime,
                    init_seconds=usage.init_seconds,
                    busy_seconds=usage.busy_seconds,
                    idle_seconds=usage.idle_seconds,
                    cost=usage.cost,
                    batches_served=usage.batches_served,
                    invocations_served=usage.invocations_served,
                )
            )
        self.pools[inst.function].remove(inst, prev_state)
        self._retry_pending_launches()

    def _retry_pending_launches(self) -> None:
        if self._shutting_down:
            return
        for fn, pending in self.pending_launches.items():
            while pending:
                config = pending[0]
                placement = self.cluster.try_allocate(config)
                if placement is None:
                    # This function's head launch does not fit, but another
                    # function's (smaller) pending launch still might: move
                    # on rather than blocking the whole retry pass.
                    break
                self.cluster.release(placement)  # _launch re-allocates
                pending.popleft()
                self._launch(fn, config)

    def schedule_warmup(
        self,
        function: str,
        start_time: float,
        config: HardwareConfig | None = None,
        count: int = 1,
    ) -> None:
        """Launch up to ``count`` instances at ``start_time`` (deduplicated)."""
        if function not in self.app.function_names:
            raise KeyError(f"unknown function {function!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if self._rec is not None:
            self._rec.emit(
                PrewarmScheduled(
                    t=self.events.now,
                    app=self.app.name,
                    function=function,
                    fire_at=start_time,
                    count=count,
                    config=config.key if config is not None else "directive",
                )
            )

        def fire() -> None:
            directive = self.directives[function]
            cfg = config or directive.config
            uncommitted = self.pools[function].uncommitted_count(config)
            # Instances already owed to open invocations — queued here or
            # still traversing upstream stages — don't count as available
            # for the upcoming invocation this warm-up targets.
            claimed = math.ceil(
                self.pending_stage_demand[function] / directive.batch
            )
            available = max(0, uncommitted - claimed)
            for _ in range(max(0, count - available)):
                self._launch(function, cfg, prewarm=True)

        self.events.schedule(start_time, fire)

    # ------------------------------------------------------------- windows
    def _schedule_tick(self, k: int) -> None:
        self.events.schedule(
            k * self.window,
            self._make_window_tick(k),
            seq=self._tick_seq_base + k - 1,
        )

    def _make_window_tick(self, k: int):
        def fire() -> None:
            if k < self._n_windows:
                self._schedule_tick(k + 1)
            arrivals = self._current_window_count
            self.window_counts.append(arrivals)
            self.metrics.arrival_samples.append((self.events.now, arrivals))
            self._current_window_count = 0
            cpu_pods = gpu_pods = 0
            for pool in self.pools.values():
                cpu, gpu = pool.backend_live_counts()
                cpu_pods += cpu
                gpu_pods += gpu
            self.metrics.pod_samples.append((self.events.now, cpu_pods, gpu_pods))
            if self._rec is not None:
                self._rec.emit(
                    WindowTick(
                        t=self.events.now,
                        app=self.app.name,
                        window_index=k - 1,
                        arrivals=arrivals,
                        cpu_pods=cpu_pods,
                        gpu_pods=gpu_pods,
                    )
                )
            self.policy.on_window(self.events.now, self.ctx)
            self._enforce_min_warm()

        return fire

    def _enforce_min_warm(self) -> None:
        now = self.events.now
        for fn, directive in self.directives.items():
            pool = self.pools[fn]
            cfg = directive.config
            # Snapshot before deficit launches: the sweep's fleet-size floor
            # must not count instances launched within this very pass.
            live_n = pool.live_count()
            deficit = directive.min_warm - pool.live_count(cfg)
            for _ in range(deficit):
                self._launch(fn, cfg)
            if deficit < 0 and math.isinf(directive.keep_alive):
                # Always-on fleets are sized purely by min_warm: shed idle
                # instances beyond the target.
                excess = -deficit
                for inst in pool.idle_sorted(config=cfg)[:excess]:
                    self._terminate(inst, reason="scale-in")
            # Retire stale-config idle instances once the directive's own
            # configuration has *warm* coverage — retiring against merely
            # initializing replacements opens a cold window.
            if pool.warm_count(cfg) >= max(directive.min_warm, 1):
                for inst in pool.idle_sorted():
                    if inst.config != cfg:
                        self._terminate(inst, reason="stale-config")
            elif not math.isinf(directive.keep_alive):
                # Sweep idle instances whose expiry timer was armed under a
                # previous (longer or infinite) keep-alive directive.
                for inst in pool.idle_sorted():
                    grace = directive.keep_alive
                    if inst.batches_served == 0:
                        grace = max(grace, directive.warm_grace)
                    if (
                        now - inst.idle_since > grace + 1e-9
                        and live_n > directive.min_warm
                    ):
                        self._terminate(inst, reason="keep-alive-sweep")
                        live_n -= 1

    # ------------------------------------------------------------- teardown
    def _finalize(self) -> None:
        self._shutting_down = True
        now = self.events.now
        for pool in self.pools.values():
            for inst in list(pool):
                if inst.is_live:
                    self._terminate(inst, reason="shutdown")
        self.metrics.duration = now
        self.metrics.unfinished = self._open_invocations
        # Unfinished invocations are SLA violations by definition; drop them
        # from the completed list so latency stats cover finished ones only.
        self.metrics.invocations = [
            inv for inv in self.metrics.invocations if inv.finished
        ]
        if self._rec is not None:
            self._rec.emit(
                RunFinished(
                    t=now,
                    app=self.app.name,
                    duration=now,
                    unfinished=self._open_invocations,
                )
            )

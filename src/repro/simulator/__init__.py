"""Discrete-event serverless platform simulator.

Stands in for the paper's OpenFaaS/Kubernetes deployment on the 8-machine
GPU cluster (§VI, §VII-A).  The simulator reproduces the platform semantics
the SMIless controller logic exercises on the real system:

- an event-driven clock with 1-second control windows (the Gateway's
  counting window);
- a cluster capacity model: 8 machines, 104 cores and one 10-slot MPS GPU
  each;
- container instances with the full lifecycle — initialization (cold
  start), warm idle with keep-alive expiry, busy (batched) execution — and
  per-second billing at the configuration's unit cost;
- a gateway that walks every invocation through its application DAG,
  queueing stages on warm instances, batching, and cold-starting on demand;
- metrics: cost with init/inference/keep-alive breakdown, E2E latency
  distribution, SLA violations, reinitialization counts, CPU:GPU usage, and
  per-window pod counts.

Scheduling policies (SMIless and the baselines) plug in through
:class:`repro.policies.base.Policy` callbacks.
"""

from repro.simulator.cluster import Cluster, Machine, Placement
from repro.simulator.container import Instance, InstanceState
from repro.simulator.events import EventQueue, TimerHandle
from repro.simulator.gateway import Gateway, SimulationContext
from repro.simulator.runtime import Deployment, Runtime, derive_app_seed
from repro.simulator.engine import ServerlessSimulator
from repro.simulator.invocation import FunctionDirective, Invocation, StageRecord
from repro.simulator.metrics import InstanceUsage, RunMetrics
from repro.simulator.multiapp import MultiAppSimulator
from repro.simulator.pools import InstancePool
from repro.simulator.reporting import format_report

__all__ = [
    "EventQueue",
    "TimerHandle",
    "InstancePool",
    "Machine",
    "Cluster",
    "Placement",
    "Instance",
    "InstanceState",
    "Invocation",
    "StageRecord",
    "FunctionDirective",
    "RunMetrics",
    "InstanceUsage",
    "Gateway",
    "Runtime",
    "derive_app_seed",
    "ServerlessSimulator",
    "SimulationContext",
    "Deployment",
    "MultiAppSimulator",
    "format_report",
]

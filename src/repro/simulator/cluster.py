"""Cluster capacity model (paper §VII-A System Settings).

Eight machines, each with two 52-core Xeons (104 cores) and one RTX
3090-class GPU shared through MPS in 10 % slots.  Containers are placed
first-fit; the cluster refuses placements that would exceed any machine's
capacity, so instance launches can queue under extreme bursts — exactly the
back-pressure a real K8s scheduler produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.configs import Backend, HardwareConfig
from repro.utils.validation import check_positive

#: Paper defaults: 8 machines x (2 x 52 cores, 1 GPU of 10 MPS slots).
DEFAULT_MACHINES = 8
DEFAULT_CORES_PER_MACHINE = 104
DEFAULT_GPU_SLOTS_PER_MACHINE = 10


@dataclass
class Machine:
    """One host: a pool of CPU cores and MPS GPU slots."""

    index: int
    cores_total: int = DEFAULT_CORES_PER_MACHINE
    gpu_slots_total: int = DEFAULT_GPU_SLOTS_PER_MACHINE
    cores_used: int = 0
    gpu_slots_used: int = 0
    #: Crashed (fault-injection outage): refuses placements until restored.
    failed: bool = False

    def can_fit(self, config: HardwareConfig) -> bool:
        """Whether this machine has room for an instance of ``config``."""
        if self.failed:
            return False
        if config.backend is Backend.CPU:
            return self.cores_used + config.cpu_cores <= self.cores_total
        return self.gpu_slots_used + config.mps_slots <= self.gpu_slots_total

    def allocate(self, config: HardwareConfig) -> None:
        """Reserve the resources of ``config`` (caller checked ``can_fit``)."""
        if not self.can_fit(config):
            raise RuntimeError(f"machine {self.index} cannot fit {config.key}")
        if config.backend is Backend.CPU:
            self.cores_used += config.cpu_cores
        else:
            self.gpu_slots_used += config.mps_slots

    def release(self, config: HardwareConfig) -> None:
        """Return the resources of ``config`` to the pool."""
        if config.backend is Backend.CPU:
            self.cores_used -= config.cpu_cores
            if self.cores_used < 0:
                raise RuntimeError(f"machine {self.index} core accounting underflow")
        else:
            self.gpu_slots_used -= config.mps_slots
            if self.gpu_slots_used < 0:
                raise RuntimeError(f"machine {self.index} GPU accounting underflow")


@dataclass(frozen=True)
class Placement:
    """A successful allocation: which machine hosts the instance."""

    machine: int
    config: HardwareConfig


@dataclass
class Cluster:
    """First-fit placement over a fleet of identical machines."""

    machines: list[Machine] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.machines:
            self.machines = [Machine(i) for i in range(DEFAULT_MACHINES)]

    @classmethod
    def build(
        cls,
        n_machines: int = DEFAULT_MACHINES,
        cores_per_machine: int = DEFAULT_CORES_PER_MACHINE,
        gpu_slots_per_machine: int = DEFAULT_GPU_SLOTS_PER_MACHINE,
    ) -> "Cluster":
        """Build a uniform cluster (paper default: 8 x 104 cores x 10 slots)."""
        check_positive("n_machines", n_machines)
        return cls(
            [
                Machine(i, cores_per_machine, gpu_slots_per_machine)
                for i in range(n_machines)
            ]
        )

    def try_allocate(self, config: HardwareConfig) -> Placement | None:
        """First-fit placement; ``None`` when no machine has room."""
        for m in self.machines:
            if m.can_fit(config):
                m.allocate(config)
                return Placement(machine=m.index, config=config)
        return None

    def release(self, placement: Placement) -> None:
        """Free a previous placement."""
        self.machines[placement.machine].release(placement.config)

    # -- fault injection -------------------------------------------------------
    def fail_machine(self, index: int) -> None:
        """Mark a machine crashed; it refuses placements until restored.

        Resource accounting is untouched: the caller (the runtime's
        outage machinery) evicts the machine's instances, and each
        eviction releases its own allocation.
        """
        self.machines[index].failed = True

    def restore_machine(self, index: int) -> None:
        """Bring a crashed machine back; its capacity is allocatable again."""
        self.machines[index].failed = False

    # -- capacity introspection ------------------------------------------------
    def cores_used(self) -> int:
        """Total CPU cores currently allocated."""
        return sum(m.cores_used for m in self.machines)

    def gpu_slots_used(self) -> int:
        """Total MPS slots currently allocated."""
        return sum(m.gpu_slots_used for m in self.machines)

    def cores_total(self) -> int:
        """Cluster-wide CPU core capacity."""
        return sum(m.cores_total for m in self.machines)

    def gpu_slots_total(self) -> int:
        """Cluster-wide MPS slot capacity."""
        return sum(m.gpu_slots_total for m in self.machines)

"""Cluster capacity model (paper §VII-A System Settings).

Eight machines, each with two 52-core Xeons (104 cores) and one RTX
3090-class GPU shared through MPS in 10 % slots.  Containers are placed
first-fit; the cluster refuses placements that would exceed any machine's
capacity, so instance launches can queue under extreme bursts — exactly the
back-pressure a real K8s scheduler produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.configs import Backend, HardwareConfig
from repro.utils.validation import check_positive

#: Paper defaults: 8 machines x (2 x 52 cores, 1 GPU of 10 MPS slots).
DEFAULT_MACHINES = 8
DEFAULT_CORES_PER_MACHINE = 104
DEFAULT_GPU_SLOTS_PER_MACHINE = 10

#: Host DRAM set aside for cached model weights, cluster-wide (GB).  Far
#: smaller than the fleet's physical memory: it bounds how many models can
#: stay host-resident for GPU swap-in (Torpor/FaaSwap-style paging).
DEFAULT_HOST_CACHE_GB = 64.0


class ModelResidencyCache:
    """LRU cache of host-resident model weights (the residency abstraction).

    Swap-capable models (``PerfProfile.swap_gpu`` set) leave their weights
    pinned in host memory after their first full initialization; from then
    on a GPU launch pages them in at swap-in cost instead of cold-starting.
    Capacity is bounded (``capacity_gb``); admitting a model past the bound
    evicts the least-recently-used residents, whose next GPU launch is a
    full cold start again.

    Keys are ``(app_name, function)``; sizes are the profile's
    ``mem_knee_gb`` (the provisioning knee is the natural footprint proxy).
    Recency is tracked by touch order, not wall-clock, so behaviour is a
    pure function of the call sequence — deterministic across runs.
    """

    def __init__(self, capacity_gb: float = DEFAULT_HOST_CACHE_GB) -> None:
        check_positive("capacity_gb", capacity_gb)
        self.capacity_gb = float(capacity_gb)
        self._resident: dict[tuple[str, str], float] = {}  # key -> size_gb
        self._used_gb = 0.0

    def __len__(self) -> int:
        return len(self._resident)

    @property
    def used_gb(self) -> float:
        """Host gigabytes currently pinned by resident models."""
        return self._used_gb

    def resident(self, key: tuple[str, str]) -> bool:
        """Whether the model's weights are host-resident (swap-in eligible)."""
        return key in self._resident

    def touch(self, key: tuple[str, str]) -> None:
        """Refresh recency of a resident model (no-op when absent)."""
        size = self._resident.pop(key, None)
        if size is not None:
            self._resident[key] = size

    def admit(
        self, key: tuple[str, str], size_gb: float
    ) -> list[tuple[str, str]]:
        """Pin a model's weights, returning any keys evicted to make room.

        A model larger than the whole cache is never admitted (returns
        ``[]`` without evicting anything).
        """
        check_positive("size_gb", size_gb)
        if size_gb > self.capacity_gb:
            return []
        if key in self._resident:
            self.touch(key)
            return []
        evicted: list[tuple[str, str]] = []
        while self._used_gb + size_gb > self.capacity_gb:
            victim, victim_size = next(iter(self._resident.items()))
            del self._resident[victim]
            self._used_gb -= victim_size
            evicted.append(victim)
        self._resident[key] = size_gb
        self._used_gb += size_gb
        return evicted

    def evict(self, key: tuple[str, str]) -> bool:
        """Drop a model from host memory; ``True`` if it was resident."""
        size = self._resident.pop(key, None)
        if size is None:
            return False
        self._used_gb -= size
        return True


@dataclass
class Machine:
    """One host: a pool of CPU cores and MPS GPU slots."""

    index: int
    cores_total: int = DEFAULT_CORES_PER_MACHINE
    gpu_slots_total: int = DEFAULT_GPU_SLOTS_PER_MACHINE
    cores_used: int = 0
    gpu_slots_used: int = 0
    #: Crashed (fault-injection outage): refuses placements until restored.
    failed: bool = False

    def can_fit(self, config: HardwareConfig) -> bool:
        """Whether this machine has room for an instance of ``config``."""
        if self.failed:
            return False
        if config.backend is Backend.CPU:
            return self.cores_used + config.cpu_cores <= self.cores_total
        return self.gpu_slots_used + config.mps_slots <= self.gpu_slots_total

    def allocate(self, config: HardwareConfig) -> None:
        """Reserve the resources of ``config`` (caller checked ``can_fit``)."""
        if not self.can_fit(config):
            raise RuntimeError(f"machine {self.index} cannot fit {config.key}")
        if config.backend is Backend.CPU:
            self.cores_used += config.cpu_cores
        else:
            self.gpu_slots_used += config.mps_slots

    def release(self, config: HardwareConfig) -> None:
        """Return the resources of ``config`` to the pool."""
        if config.backend is Backend.CPU:
            self.cores_used -= config.cpu_cores
            if self.cores_used < 0:
                raise RuntimeError(f"machine {self.index} core accounting underflow")
        else:
            self.gpu_slots_used -= config.mps_slots
            if self.gpu_slots_used < 0:
                raise RuntimeError(f"machine {self.index} GPU accounting underflow")


@dataclass(frozen=True)
class Placement:
    """A successful allocation: which machine hosts the instance."""

    machine: int
    config: HardwareConfig


@dataclass
class Cluster:
    """First-fit placement over a fleet of identical machines."""

    machines: list[Machine] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.machines:
            self.machines = [Machine(i) for i in range(DEFAULT_MACHINES)]

    @classmethod
    def build(
        cls,
        n_machines: int = DEFAULT_MACHINES,
        cores_per_machine: int = DEFAULT_CORES_PER_MACHINE,
        gpu_slots_per_machine: int = DEFAULT_GPU_SLOTS_PER_MACHINE,
    ) -> "Cluster":
        """Build a uniform cluster (paper default: 8 x 104 cores x 10 slots)."""
        check_positive("n_machines", n_machines)
        return cls(
            [
                Machine(i, cores_per_machine, gpu_slots_per_machine)
                for i in range(n_machines)
            ]
        )

    def try_allocate(self, config: HardwareConfig) -> Placement | None:
        """First-fit placement; ``None`` when no machine has room."""
        for m in self.machines:
            if m.can_fit(config):
                m.allocate(config)
                return Placement(machine=m.index, config=config)
        return None

    def release(self, placement: Placement) -> None:
        """Free a previous placement."""
        self.machines[placement.machine].release(placement.config)

    # -- fault injection -------------------------------------------------------
    def fail_machine(self, index: int) -> None:
        """Mark a machine crashed; it refuses placements until restored.

        Resource accounting is untouched: the caller (the runtime's
        outage machinery) evicts the machine's instances, and each
        eviction releases its own allocation.
        """
        self.machines[index].failed = True

    def restore_machine(self, index: int) -> None:
        """Bring a crashed machine back; its capacity is allocatable again."""
        self.machines[index].failed = False

    # -- capacity introspection ------------------------------------------------
    def cores_used(self) -> int:
        """Total CPU cores currently allocated."""
        return sum(m.cores_used for m in self.machines)

    def gpu_slots_used(self) -> int:
        """Total MPS slots currently allocated."""
        return sum(m.gpu_slots_used for m in self.machines)

    def cores_total(self) -> int:
        """Cluster-wide CPU core capacity."""
        return sum(m.cores_total for m in self.machines)

    def gpu_slots_total(self) -> int:
        """Cluster-wide MPS slot capacity."""
        return sum(m.gpu_slots_total for m in self.machines)

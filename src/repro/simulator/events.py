"""Event queue: the simulator's clock and dispatch loop.

A minimal but strict discrete-event core: events are ``(time, seq,
callback)`` triples in a binary heap.  The monotonically increasing ``seq``
makes simultaneous events fire in scheduling order, which keeps runs fully
deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable


class EventQueue:
    """Time-ordered callback queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time``.

        Events scheduled in the past are clamped to *now* — a late pre-warm
        request simply starts immediately, as on the real platform.
        """
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        heapq.heappush(self._heap, (max(time, self._now), next(self._seq), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(self._now + delay, callback)

    def step(self) -> bool:
        """Fire the earliest event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self._now = time
        callback()
        return True

    def run_until(self, horizon: float) -> None:
        """Fire events in order until the queue empties or passes ``horizon``."""
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = max(self._now, horizon)

    def run(self, max_events: int = 50_000_000) -> None:
        """Drain the queue completely (bounded as a runaway backstop)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(f"event budget of {max_events} exhausted")

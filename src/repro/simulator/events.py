"""Event queue: the simulator's clock and dispatch loop.

A minimal but strict discrete-event core: events are ``(time, seq, handle)``
triples in a binary heap.  The monotonically increasing ``seq`` makes
simultaneous events fire in scheduling order, which keeps runs fully
deterministic for a fixed seed.

Two facilities keep the heap small on long traces:

- :meth:`EventQueue.schedule` returns a :class:`TimerHandle` whose
  ``cancel()`` lazily deletes the entry (dead entries are skipped on pop and
  compacted away once they outnumber live ones), so callers can retract
  keep-alive expiry timers instead of leaving dead closures to fire as
  no-ops;
- :meth:`EventQueue.reserve` hands out a contiguous block of sequence
  numbers up front, letting a *streamed* event source (the engine's
  self-rescheduling arrival and window-tick chains) push events lazily while
  preserving the exact tie-breaking order a pre-pushed schedule would have
  had.  Heap size then stays proportional to the number of *live* events,
  not to trace length.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

#: Minimum number of cancelled entries before a compaction can trigger.
COMPACT_MIN_DEAD = 16


class TimerHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "seq", "_callback", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        queue: "EventQueue",
    ) -> None:
        self.time = time
        self.seq = seq
        self._callback = callback
        self._queue = queue

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not fired, not cancelled)."""
        return self._callback is not None

    def cancel(self) -> bool:
        """Retract the event; returns ``True`` if it was still pending.

        Cancelling an already-fired or already-cancelled event is a no-op.
        The heap entry is deleted lazily: it is skipped when it reaches the
        top, and bulk-compacted when dead entries dominate the heap.
        """
        if self._callback is None:
            return False
        self._callback = None
        queue, self._queue = self._queue, None
        if queue is not None:
            queue._note_cancel()
        return True

    def _fire(self) -> None:
        callback = self._callback
        self._callback = None
        self._queue = None
        assert callback is not None
        callback()


class EventQueue:
    """Time-ordered callback queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, TimerHandle]] = []
        self._seq = 0
        self._now = 0.0
        self._dead = 0
        self.processed = 0  # events fired over the queue's lifetime
        self.compactions = 0  # dead-entry sweeps (introspection for tests)

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return len(self._heap) - self._dead

    @property
    def heap_size(self) -> int:
        """Raw heap entry count, including cancelled-but-not-yet-swept ones."""
        return len(self._heap)

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        seq: int | None = None,
    ) -> TimerHandle:
        """Schedule ``callback`` at absolute ``time``; returns its handle.

        Events scheduled in the past are clamped to *now* — a late pre-warm
        request simply starts immediately, as on the real platform.  ``seq``
        may name a slot previously obtained from :meth:`reserve`; by default
        the next fresh sequence number is used.
        """
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        if seq is None:
            seq = self._seq
            self._seq += 1
        handle = TimerHandle(max(time, self._now), seq, callback, self)
        heapq.heappush(self._heap, (handle.time, handle.seq, handle))
        return handle

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback)

    def reserve(self, n: int) -> int:
        """Reserve ``n`` consecutive sequence numbers; returns the first.

        A streamed event source (one event scheduling its successor) can
        claim its tie-breaking slots up front, so lazily pushed events sort
        against other producers exactly as if the whole stream had been
        pre-pushed at reservation time.
        """
        if n < 0:
            raise ValueError(f"reservation size must be >= 0, got {n}")
        start = self._seq
        self._seq += n
        return start

    # ------------------------------------------------------------- internals
    def _note_cancel(self) -> None:
        self._dead += 1
        if self._dead >= COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without dead entries."""
        self._heap = [e for e in self._heap if e[2].active]
        heapq.heapify(self._heap)
        self._dead = 0
        self.compactions += 1

    def _prune_head(self) -> None:
        """Drop cancelled entries sitting at the top of the heap."""
        heap = self._heap
        while heap and not heap[0][2].active:
            heapq.heappop(heap)
            self._dead -= 1

    def next_time(self) -> float | None:
        """Time of the earliest live pending event, or ``None`` if empty.

        Lets an external pacer (the live serving façade) decide whether
        stepping would cross a horizon without actually firing anything.
        """
        self._prune_head()
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------ run
    def step(self) -> bool:
        """Fire the earliest live event; returns False when none remain."""
        heap = self._heap
        while heap:
            time, _, handle = heapq.heappop(heap)
            if not handle.active:
                self._dead -= 1
                continue
            self._now = time
            self.processed += 1
            handle._fire()
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Fire events in order until the queue empties or passes ``horizon``."""
        while True:
            self._prune_head()
            if not self._heap or self._heap[0][0] > horizon:
                break
            self.step()
        self._now = max(self._now, horizon)

    def run(self, max_events: int = 50_000_000) -> None:
        """Drain the queue completely (bounded as a runaway backstop)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(f"event budget of {max_events} exhausted")

"""Shared runtime: one clock, one event heap, one cluster, N gateways.

:class:`Runtime` is the multi-tenant core of the simulator.  It owns the
*shared mechanism* — the :class:`~repro.simulator.events.EventQueue` (the
simulated clock), the :class:`~repro.simulator.cluster.Cluster` capacity
model, and the drain policy — while every co-resident application brings
its own :class:`~repro.simulator.gateway.Gateway` (queues, directives,
instance pools, per-app metrics).  A single-application run is just a
runtime with one gateway; the paper's §VII-A co-run is the same runtime
with three.  Capacity pressure from one tenant back-pressures the others
through the shared cluster exactly as on the real 8-machine testbed.

Per-application seeding comes in two flavours (see
:func:`derive_app_seed`): *name-derived* seeds are stable under deployment
reordering — adding or permuting tenants never perturbs another tenant's
noise streams — while the *legacy* positional scheme (``seed + index``)
reproduces the historical :class:`MultiAppSimulator` results bit for bit.

The runtime also owns the telemetry plane's sink: one
:class:`~repro.telemetry.recorder.Recorder` shared by every gateway (the
default :class:`~repro.telemetry.recorder.NullRecorder` records nothing
and costs nothing), and the run-scoped invocation-id counter, so traces
from independent runtimes are comparable regardless of how many runs one
process executed before.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.dag.graph import AppDAG
from repro.simulator.cluster import Cluster, ModelResidencyCache
from repro.simulator.events import EventQueue
from repro.simulator.gateway import Gateway
from repro.simulator.metrics import RunMetrics
from repro.telemetry.events import CLUSTER_SCOPE, MachineDown, MachineUp
from repro.telemetry.recorder import NullRecorder
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.plan import FaultPlan
    from repro.overload.spec import OverloadSpec
    from repro.policies.base import Policy
    from repro.telemetry.recorder import Recorder


#: Recognised per-app seeding schemes for multi-tenant runs.
SEEDING_MODES = ("name", "legacy")


def derive_app_seed(seed: int, app_name: str) -> int:
    """Order-independent per-application seed.

    Hashes ``(seed, app_name)`` with BLAKE2b so a tenant's RNG streams
    (oracle noise, fault injection) depend only on the root seed and its
    own name — never on its position in the deployment list or on which
    other tenants co-run.  ``hashlib`` rather than ``hash()`` keeps the
    derivation stable across interpreter runs (``PYTHONHASHSEED``).
    """
    digest = hashlib.blake2b(
        f"{seed}:{app_name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def derive_slice_seed(
    seed: int, app_name: str, slice_index: int, n_slices: int
) -> int:
    """Order-independent seed for one trace time-slice of an application.

    The shard plane (:mod:`repro.sharding`) partitions a single app's
    trace into ``n_slices`` contiguous windows, each simulated as its own
    runtime.  Every slice gets its own noise streams — derived, like
    :func:`derive_app_seed`, only from stable names, never from which
    shard or process runs the slice.  An unsliced unit
    (``n_slices == 1``) collapses to the plain per-app derivation so a
    one-slice shard run reproduces a standalone per-app run bit for bit.
    """
    if not 0 <= slice_index < n_slices:
        raise ValueError(
            f"slice_index must be in [0, {n_slices}), got {slice_index}"
        )
    if n_slices == 1:
        return derive_app_seed(seed, app_name)
    return derive_app_seed(seed, f"{app_name}#slice{slice_index}/{n_slices}")


@dataclass(frozen=True)
class Deployment:
    """One application with its trace and scheduling policy."""

    app: AppDAG
    trace: Trace
    policy: "Policy"


class Runtime:
    """Shared clock, event heap, cluster and billing for N gateways."""

    def __init__(
        self,
        *,
        cluster: Cluster | None = None,
        events: EventQueue | None = None,
        drain_timeout: float = 300.0,
        recorder: "Recorder | None" = None,
        faults: "FaultPlan | None" = None,
        overload: "OverloadSpec | None" = None,
        residency: ModelResidencyCache | None = None,
    ) -> None:
        if drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {drain_timeout}")
        self.events = events if events is not None else EventQueue()
        self.cluster = cluster if cluster is not None else Cluster.build()
        self.drain_timeout = float(drain_timeout)
        self.recorder: "Recorder" = (
            recorder if recorder is not None else NullRecorder()
        )
        self.faults = faults
        # Overload-resilience plane (bounded queues, admission control,
        # circuit breakers, brownout; see repro.overload).  Shared by every
        # gateway, though each keeps its own per-app token bucket.
        self.overload = overload
        # Host-memory model residency (GPU swap-in): shared across tenants
        # like the cluster itself — one app's working set can evict
        # another's, which is exactly the co-run contention of §VII-A.
        # Idle unless a swap-capable profile is deployed.
        self.residency = (
            residency if residency is not None else ModelResidencyCache()
        )
        self.gateways: list[Gateway] = []
        # Run-scoped invocation ids: every runtime numbers its invocations
        # from 0, so traces are stable whether a process ran one simulation
        # or a whole grid before this one.
        self._invocation_ids = itertools.count()
        # Instance ids are run-scoped for the same reason: a grid worker
        # that ran three simulations must trace the same ids as a fresh
        # process running only this one.
        self._instance_ids = itertools.count()

    def next_invocation_id(self) -> int:
        """Next invocation id on this runtime's own counter."""
        return next(self._invocation_ids)

    def next_instance_id(self) -> int:
        """Next instance id on this runtime's own counter."""
        return next(self._instance_ids)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.events.now

    def add_app(
        self,
        app: AppDAG,
        trace: Trace,
        policy: "Policy",
        *,
        window: float = 1.0,
        seed: int = 0,
        noisy: bool = True,
        init_failure_rate: float = 0.0,
        gpu_contention: float = 0.0,
        retention: str = "full",
    ) -> Gateway:
        """Register one application on this runtime; returns its gateway."""
        if any(gw.app.name == app.name for gw in self.gateways):
            raise ValueError(
                f"duplicate application names: "
                f"{[gw.app.name for gw in self.gateways] + [app.name]}"
            )
        gateway = Gateway(
            app,
            trace,
            policy,
            runtime=self,
            window=window,
            seed=seed,
            noisy=noisy,
            init_failure_rate=init_failure_rate,
            gpu_contention=gpu_contention,
            retention=retention,
        )
        self.gateways.append(gateway)
        return gateway

    # ------------------------------------------------------------------ run
    def setup(self) -> None:
        """Start every gateway's arrival / window-tick streams."""
        self._schedule_outages()
        for gateway in self.gateways:
            gateway.setup()

    # -- fault injection: machine outages -----------------------------------
    def _schedule_outages(self) -> None:
        """Schedule every machine outage window from the fault plan.

        Down events evict the machine's instances through each gateway
        (requeueing in-flight batches onto the retry path); finite up
        events make the capacity allocatable again and kick queued
        launches.
        """
        if self.faults is None or not self.faults.outages:
            return
        n = len(self.cluster.machines)
        for outage in self.faults.outages:
            if outage.machine >= n:
                raise ValueError(
                    f"outage targets machine {outage.machine} but the "
                    f"cluster has only {n} machines"
                )
            self.events.schedule(
                outage.start, lambda m=outage.machine: self._machine_down(m)
            )
            if outage.end != float("inf"):
                self.events.schedule(
                    outage.end, lambda m=outage.machine: self._machine_up(m)
                )

    def _machine_down(self, index: int) -> None:
        """Crash a machine: refuse placements, evict its instances."""
        machine = self.cluster.machines[index]
        if machine.failed:  # overlapping outage windows
            return
        self.cluster.fail_machine(index)
        if self.recorder.enabled:
            self.recorder.emit(
                MachineDown(t=self.events.now, app=CLUSTER_SCOPE, machine=index)
            )
        for gateway in self.gateways:
            gateway.evict_machine(index)

    def _machine_up(self, index: int) -> None:
        """Restore a crashed machine and retry queued launches."""
        machine = self.cluster.machines[index]
        if not machine.failed:
            return
        self.cluster.restore_machine(index)
        if self.recorder.enabled:
            self.recorder.emit(
                MachineUp(t=self.events.now, app=CLUSTER_SCOPE, machine=index)
            )
        for gateway in self.gateways:
            gateway.retry_pending_launches()

    @property
    def open_invocations(self) -> int:
        """Invocations in flight across all gateways."""
        return sum(gw.open_invocations for gw in self.gateways)

    def run(self) -> dict[str, RunMetrics]:
        """Serve every gateway's trace to completion; metrics by app name.

        The horizon is the longest trace; after it, in-flight invocations
        get a bounded drain window before finalization.
        """
        if not self.gateways:
            raise ValueError("runtime has no gateways; call add_app first")
        self.setup()
        horizon = max(gw.trace.duration for gw in self.gateways)
        self.events.run_until(horizon)
        deadline = horizon + self.drain_timeout
        while (
            any(gw.open_invocations > 0 for gw in self.gateways)
            and self.events.now < deadline
        ):
            if not self.events.step():
                break
        return {gw.app.name: gw.finalize() for gw in self.gateways}

    def total_cost(self, metrics: dict[str, RunMetrics] | None = None) -> float:
        """Aggregate billed cost across all applications."""
        if metrics is None:
            metrics = {gw.app.name: gw.metrics for gw in self.gateways}
        return sum(m.total_cost() for m in metrics.values())

"""Indexed per-function instance pools.

The engine used to keep one flat ``list[Instance]`` per function and answer
every lifecycle query — idle pick, initializing count, live/idle counts,
min-warm enforcement — by scanning it.  :class:`InstancePool` replaces the
scans with per-state membership sets and per-configuration / per-backend
counters that are updated on every state transition, so the dispatch hot
path is O(1) (or O(matching instances)) instead of O(all instances).

Determinism contract: every accessor that yields instances does so in
ascending ``instance_id`` order, which — because instance ids increase
monotonically with launch order — reproduces the pick and termination order
of the original list-scan implementation bit-for-bit.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Iterator

from repro.hardware.configs import Backend, HardwareConfig
from repro.simulator.container import Instance, InstanceState

#: The three states in which an instance holds cluster resources.
LIVE_STATES = (
    InstanceState.INITIALIZING,
    InstanceState.IDLE,
    InstanceState.BUSY,
)


class InstancePool:
    """State-indexed registry of one function's live instances."""

    __slots__ = (
        "_live",
        "_idle",
        "_idle_heap",
        "_idle_cfg_heaps",
        "_state_counts",
        "_cfg_counts",
        "_backend_live",
    )

    def __init__(self) -> None:
        # Insertion order == launch order == ascending instance_id.
        self._live: dict[int, Instance] = {}
        self._idle: dict[int, Instance] = {}
        # Min-heaps of instance ids for O(log n) FIFO picks; entries are
        # deleted lazily (validity == membership in ``_idle``).
        self._idle_heap: list[int] = []
        self._idle_cfg_heaps: dict[HardwareConfig, list[int]] = {}
        self._state_counts: Counter[InstanceState] = Counter()
        self._cfg_counts: dict[InstanceState, Counter[HardwareConfig]] = {
            s: Counter() for s in LIVE_STATES
        }
        self._backend_live: Counter[Backend] = Counter()

    # ------------------------------------------------------------ mutation
    def add(self, inst: Instance) -> None:
        """Register a freshly launched (INITIALIZING) instance."""
        if inst.state is not InstanceState.INITIALIZING:
            raise ValueError(
                f"instance {inst.instance_id} added in state {inst.state.value}"
            )
        self._live[inst.instance_id] = inst
        self._count(inst.state, inst, +1)

    def transition(self, inst: Instance, old_state: InstanceState) -> None:
        """Re-index ``inst`` after its state changed from ``old_state``."""
        new_state = inst.state
        if new_state is old_state:
            return
        self._count(old_state, inst, -1)
        self._count(new_state, inst, +1)
        if old_state is InstanceState.IDLE:
            self._idle.pop(inst.instance_id, None)
        if new_state is InstanceState.IDLE:
            self._idle[inst.instance_id] = inst
            heapq.heappush(self._idle_heap, inst.instance_id)
            heapq.heappush(
                self._idle_cfg_heaps.setdefault(inst.config, []),
                inst.instance_id,
            )

    def remove(self, inst: Instance, old_state: InstanceState) -> None:
        """Deregister a terminated instance (``old_state`` = state before)."""
        self._count(old_state, inst, -1)
        del self._live[inst.instance_id]
        if old_state is InstanceState.IDLE:
            self._idle.pop(inst.instance_id, None)

    def _count(self, state: InstanceState, inst: Instance, delta: int) -> None:
        self._state_counts[state] += delta
        self._cfg_counts[state][inst.config] += delta
        self._backend_live[inst.config.backend] += delta

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._live)

    def __iter__(self) -> Iterator[Instance]:
        """Live instances in launch (ascending id) order."""
        return iter(self._live.values())

    def live_count(self, config: HardwareConfig | None = None) -> int:
        """Instances holding resources, optionally of one configuration."""
        if config is None:
            return len(self._live)
        return sum(self._cfg_counts[s][config] for s in LIVE_STATES)

    def idle_count(self) -> int:
        """Warm instances currently idle."""
        return len(self._idle)

    def initializing_count(self) -> int:
        """Instances still warming up."""
        return self._state_counts[InstanceState.INITIALIZING]

    def warm_count(self, config: HardwareConfig | None = None) -> int:
        """Instances past initialization (IDLE or BUSY)."""
        if config is None:
            return (
                self._state_counts[InstanceState.IDLE]
                + self._state_counts[InstanceState.BUSY]
            )
        return (
            self._cfg_counts[InstanceState.IDLE][config]
            + self._cfg_counts[InstanceState.BUSY][config]
        )

    def uncommitted_count(self, config: HardwareConfig | None = None) -> int:
        """Instances a warm-up request may count on (INITIALIZING or IDLE)."""
        if config is None:
            return (
                self._state_counts[InstanceState.INITIALIZING]
                + self._state_counts[InstanceState.IDLE]
            )
        return (
            self._cfg_counts[InstanceState.INITIALIZING][config]
            + self._cfg_counts[InstanceState.IDLE][config]
        )

    def backend_live_counts(self) -> tuple[int, int]:
        """``(cpu, gpu)`` live instance counts for the pod-sample metric."""
        return (
            self._backend_live[Backend.CPU],
            self._backend_live[Backend.GPU],
        )

    def pick_idle(self, preferred: HardwareConfig) -> Instance | None:
        """Lowest-id idle instance, preferring ``preferred``'s configuration.

        This is the original scan's pick order: first idle instance of the
        directive's configuration in launch order, else the oldest idle
        instance of any configuration.
        """
        cfg_heap = self._idle_cfg_heaps.get(preferred)
        if cfg_heap is not None:
            inst = self._peek(cfg_heap)
            if inst is not None:
                return inst
        return self._peek(self._idle_heap)

    def _peek(self, heap: list[int]) -> Instance | None:
        """Smallest currently-idle id on ``heap``, pruning stale entries."""
        while heap:
            inst = self._idle.get(heap[0])
            if inst is None:
                heapq.heappop(heap)
                continue
            return inst
        return None

    def idle_sorted(self, config: HardwareConfig | None = None) -> list[Instance]:
        """Snapshot of idle instances in ascending id order."""
        ids = sorted(self._idle)
        if config is None:
            return [self._idle[i] for i in ids]
        return [self._idle[i] for i in ids if self._idle[i].config == config]

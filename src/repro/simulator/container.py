"""Container instances: lifecycle state machine and billing.

An instance is launched (initialization starts, resources allocated and
billed), becomes warm, alternates between idle and busy while serving
batches, and terminates — either by keep-alive expiry, by policy, or at
simulation end.  Billing covers the whole launch→termination span at the
configuration's unit cost, split into initialization, busy (inference) and
idle (keep-alive / pre-warm slack) seconds for the cost-breakdown metrics.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hardware.configs import HardwareConfig
from repro.simulator.cluster import Placement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.events import TimerHandle

_instance_ids = itertools.count()


class InstanceState(enum.Enum):
    """Lifecycle states of a container instance."""

    INITIALIZING = "initializing"
    IDLE = "idle"
    BUSY = "busy"
    TERMINATED = "terminated"


@dataclass
class Instance:
    """One running container serving a single function."""

    function: str
    config: HardwareConfig
    placement: Placement
    launched_at: float
    init_duration: float
    state: InstanceState = InstanceState.INITIALIZING
    instance_id: int = field(default_factory=lambda: next(_instance_ids))
    #: Launched by a policy pre-warm rather than queue demand; drives the
    #: telemetry plane's PrewarmHit / PrewarmMiss accounting.
    prewarmed: bool = False
    #: Initialized by paging a host-resident model onto the GPU (swap-in,
    #: ≪ cold start) instead of a full cold initialization.
    swapped_in: bool = False
    warm_at: float = 0.0
    idle_since: float = 0.0
    busy_seconds: float = 0.0
    batches_served: int = 0
    invocations_served: int = 0
    terminated_at: float | None = None
    expiry_epoch: int = 0  # invalidates stale keep-alive timers
    # Pending keep-alive expiry timer; cancelled on dispatch/termination so
    # dead closures never accumulate in the event heap.
    expiry_timer: "TimerHandle | None" = field(
        default=None, repr=False, compare=False
    )
    # In-flight batch tracking, populated only while a FaultPlan is active:
    # the invocations currently executing on this instance and the timer
    # that will complete (or fail) them.  Cancellable, so a machine outage
    # can kill the batch mid-flight and hand the items to the retry path.
    inflight: "list | None" = field(default=None, repr=False, compare=False)
    done_timer: "TimerHandle | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.warm_at = self.launched_at + self.init_duration

    # -- transitions --------------------------------------------------------
    def mark_warm(self, now: float) -> None:
        """Initialization finished; instance is idle and serviceable."""
        if self.state is not InstanceState.INITIALIZING:
            raise RuntimeError(f"instance {self.instance_id} warmed twice")
        self.state = InstanceState.IDLE
        self.idle_since = now

    def mark_busy(self, now: float, batch: int) -> None:
        """Start executing a batch."""
        if self.state is not InstanceState.IDLE:
            raise RuntimeError(
                f"instance {self.instance_id} dispatched while {self.state.value}"
            )
        self.state = InstanceState.BUSY
        self.batches_served += 1
        self.invocations_served += batch

    def mark_idle(self, now: float, busy_time: float) -> None:
        """Batch finished; instance returns to the idle pool."""
        if self.state is not InstanceState.BUSY:
            raise RuntimeError(
                f"instance {self.instance_id} finished while {self.state.value}"
            )
        self.busy_seconds += busy_time
        self.state = InstanceState.IDLE
        self.idle_since = now
        self.expiry_epoch += 1

    def mark_terminated(self, now: float) -> None:
        """Release the instance; billing stops at ``now``."""
        if self.state is InstanceState.TERMINATED:
            raise RuntimeError(f"instance {self.instance_id} terminated twice")
        self.state = InstanceState.TERMINATED
        self.terminated_at = now

    # -- billing ----------------------------------------------------------------
    def lifetime(self, now: float | None = None) -> float:
        """Seconds from launch to termination (or ``now`` if still alive)."""
        end = self.terminated_at if self.terminated_at is not None else now
        if end is None:
            raise ValueError("live instance requires `now` to compute lifetime")
        return max(0.0, end - self.launched_at)

    def cost(self, now: float | None = None) -> float:
        """Dollars billed over the instance lifetime."""
        return self.lifetime(now) * self.config.unit_cost

    def init_seconds(self, now: float | None = None) -> float:
        """Billed seconds spent initializing."""
        return min(self.lifetime(now), self.init_duration)

    def idle_seconds(self, now: float | None = None) -> float:
        """Billed seconds neither initializing nor executing."""
        return max(
            0.0, self.lifetime(now) - self.init_seconds(now) - self.busy_seconds
        )

    @property
    def is_live(self) -> bool:
        """Whether the instance still holds resources."""
        return self.state is not InstanceState.TERMINATED

"""Hardware configuration space and pricing (paper §VII-A System Settings).

The paper's cluster offers CPU containers with 1, 2, 4, 8 or 16 cores priced
like AWS c6g instances (``x × $0.034/hour`` for ``x`` cores) and GPU
containers allocated in MPS units of 10 % of the device, priced at 10 % of an
AWS p3.2xlarge ($3.06/hour for a full GPU).  A configuration is therefore one
of 15 discrete points; the Strategy Optimizer explores exactly this space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import total_ordering

from repro.utils.validation import check_in_range, check_positive

#: CPU core counts offered for CPU-backed containers (AWS c6g family).
CPU_CORE_OPTIONS: tuple[int, ...] = (1, 2, 4, 8, 16)

#: Granularity of GPU sharing through MPS — the paper fixes 10 % units.
MPS_UNIT: float = 0.10

#: GPU fractions offered for GPU-backed containers (10 % .. 100 %).
GPU_FRACTION_OPTIONS: tuple[float, ...] = tuple(
    round(MPS_UNIT * k, 2) for k in range(1, 11)
)

#: Price of one CPU core per hour (AWS c6g series).
CPU_CORE_PRICE_PER_HOUR: float = 0.034

#: Price of a full V100-class GPU per hour (AWS p3.2xlarge).
GPU_PRICE_PER_HOUR: float = 3.06


class Backend(enum.Enum):
    """Type of compute backing a function instance."""

    CPU = "cpu"
    GPU = "gpu"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@total_ordering
@dataclass(frozen=True)
class HardwareConfig:
    """One point of the heterogeneous configuration space.

    Exactly one of ``cpu_cores`` / ``gpu_fraction`` is meaningful, selected
    by ``backend``.  Instances are immutable, hashable and ordered by unit
    cost so collections of configurations sort cheapest-first by default.
    """

    backend: Backend
    cpu_cores: int = 0
    gpu_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.backend is Backend.CPU:
            if self.cpu_cores not in CPU_CORE_OPTIONS:
                raise ValueError(
                    f"cpu_cores must be one of {CPU_CORE_OPTIONS}, got {self.cpu_cores}"
                )
            if self.gpu_fraction:
                raise ValueError("CPU config must not set gpu_fraction")
        else:
            check_in_range("gpu_fraction", self.gpu_fraction, MPS_UNIT, 1.0)
            # Snap to the MPS grid to avoid float drift in comparisons.
            snapped = round(round(self.gpu_fraction / MPS_UNIT) * MPS_UNIT, 2)
            if abs(snapped - self.gpu_fraction) > 1e-9:
                raise ValueError(
                    f"gpu_fraction must be a multiple of {MPS_UNIT}, got {self.gpu_fraction}"
                )
            if self.cpu_cores:
                raise ValueError("GPU config must not set cpu_cores")

    # -- pricing -----------------------------------------------------------
    @property
    def unit_cost_per_hour(self) -> float:
        """Dollar cost of keeping one instance of this config up for 1 hour."""
        if self.backend is Backend.CPU:
            return self.cpu_cores * CPU_CORE_PRICE_PER_HOUR
        return self.gpu_fraction * GPU_PRICE_PER_HOUR

    @property
    def unit_cost(self) -> float:
        """Dollar cost per second — the ``U(*)`` of Eq. (3)."""
        return self.unit_cost_per_hour / 3600.0

    # -- identity ----------------------------------------------------------
    @property
    def key(self) -> str:
        """Stable string id, e.g. ``"cpu-4"`` or ``"gpu-30"``."""
        if self.backend is Backend.CPU:
            return f"cpu-{self.cpu_cores}"
        return f"gpu-{int(round(self.gpu_fraction * 100))}"

    @property
    def mps_slots(self) -> int:
        """Number of 10 % MPS slots this config occupies (0 for CPU)."""
        if self.backend is Backend.CPU:
            return 0
        return int(round(self.gpu_fraction / MPS_UNIT))

    def __lt__(self, other: "HardwareConfig") -> bool:
        if not isinstance(other, HardwareConfig):
            return NotImplemented
        return (self.unit_cost, self.key) < (other.unit_cost, other.key)

    def __str__(self) -> str:
        return self.key

    @classmethod
    def cpu(cls, cores: int) -> "HardwareConfig":
        """Build a CPU configuration with ``cores`` cores."""
        return cls(Backend.CPU, cpu_cores=cores)

    @classmethod
    def gpu(cls, fraction: float) -> "HardwareConfig":
        """Build a GPU configuration with an MPS ``fraction`` of the device."""
        return cls(Backend.GPU, gpu_fraction=round(fraction, 2))

    @classmethod
    def from_key(cls, key: str) -> "HardwareConfig":
        """Parse a config from its ``key`` representation."""
        kind, _, amount = key.partition("-")
        if kind == "cpu":
            return cls.cpu(int(amount))
        if kind == "gpu":
            return cls.gpu(int(amount) / 100.0)
        raise ValueError(f"unrecognized config key {key!r}")


class ConfigurationSpace:
    """The discrete set ``C`` of candidate configurations (paper §V-A).

    The default space is the paper's: 5 CPU tiers plus 10 GPU fractions.
    The space can be restricted (e.g. the SMIless-Homo ablation uses
    ``ConfigurationSpace(gpu_fractions=())``).
    """

    def __init__(
        self,
        cpu_cores: tuple[int, ...] = CPU_CORE_OPTIONS,
        gpu_fractions: tuple[float, ...] = GPU_FRACTION_OPTIONS,
    ) -> None:
        if not cpu_cores and not gpu_fractions:
            raise ValueError("configuration space must not be empty")
        for c in cpu_cores:
            check_positive("cpu_cores entry", c)
        configs: list[HardwareConfig] = [HardwareConfig.cpu(c) for c in cpu_cores]
        configs.extend(HardwareConfig.gpu(f) for f in gpu_fractions)
        self._configs = tuple(sorted(configs))
        self._by_key = {c.key: c for c in self._configs}

    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self):
        return iter(self._configs)

    def __contains__(self, config: HardwareConfig) -> bool:
        return config.key in self._by_key

    @property
    def configs(self) -> tuple[HardwareConfig, ...]:
        """All configurations, sorted cheapest-first."""
        return self._configs

    def by_key(self, key: str) -> HardwareConfig:
        """Look up a configuration by its string key."""
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(f"config {key!r} not in space") from None

    def cpu_configs(self) -> tuple[HardwareConfig, ...]:
        """CPU-backed configurations only, cheapest-first."""
        return tuple(c for c in self._configs if c.backend is Backend.CPU)

    def gpu_configs(self) -> tuple[HardwareConfig, ...]:
        """GPU-backed configurations only, cheapest-first."""
        return tuple(c for c in self._configs if c.backend is Backend.GPU)

    def cheapest(self) -> HardwareConfig:
        """The lowest unit-cost configuration in the space."""
        return self._configs[0]

    def most_expensive(self) -> HardwareConfig:
        """The highest unit-cost configuration in the space."""
        return self._configs[-1]

    @classmethod
    def cpu_only(cls) -> "ConfigurationSpace":
        """Homogeneous (CPU-only) space used by the SMIless-Homo ablation."""
        return cls(gpu_fractions=())

    @classmethod
    def default(cls) -> "ConfigurationSpace":
        """The paper's full 15-point heterogeneous space."""
        return cls()

"""Ground-truth performance model for the simulated inference functions.

The paper serves real PyTorch models; we do not have the authors' cluster,
so each Table I model is replaced by an analytic ground-truth that follows
the paper's own latency law (Eq. 1 for CPU, Eq. 2 for GPU):

    inference_time = lambda * B * (alpha / resources + beta) + gamma

plus measurement noise.  The Offline Profiler never sees these parameters —
it observes noisy timing samples and re-fits the law, exactly as the real
profiler fits measurements from Prometheus.  CPU execution carries more
interference noise than GPU execution, matching the paper's observation
that GPU inference-time profiling is more precise (Fig. 11b).

Initialization times are Gaussian around a per-backend mean: GPU cold starts
are slower than CPU cold starts (CUDA context + host-to-device weight
transfer, §IV-A1) and noisier (PCIe/network contention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.configs import Backend, HardwareConfig
from repro.hardware.servicetime import ServiceTimeModel, WorkUnit
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

#: Relative (lognormal sigma) inference-noise level per backend.  CPU runs
#: suffer more interference (cache, co-located containers) than MPS slices.
CPU_INFERENCE_NOISE: float = 0.08
GPU_INFERENCE_NOISE: float = 0.03


@dataclass(frozen=True)
class LatencyParams:
    """Parameters of the Amdahl-law latency model of Eq. (1)/(2).

    ``alpha`` is the parallelizable computational volume, ``beta`` the serial
    per-item overhead, ``gamma`` the network/transfer constant, and
    ``lam`` the batching degradation coefficient (λ in the paper).
    """

    lam: float
    alpha: float
    beta: float
    gamma: float

    def __post_init__(self) -> None:
        check_positive("lam", self.lam)
        check_positive("alpha", self.alpha)
        check_positive("beta", self.beta, strict=False)
        check_positive("gamma", self.gamma, strict=False)

    def latency(self, resources: float, batch: int = 1) -> float:
        """Evaluate the latency law for ``resources`` (cores or GPU fraction)."""
        check_positive("resources", resources)
        check_positive("batch", batch)
        return self.lam * batch * (self.alpha / resources + self.beta) + self.gamma

    def as_vector(self) -> np.ndarray:
        """Parameters as ``[lam, alpha, beta, gamma]`` (profiler fitting)."""
        return np.array([self.lam, self.alpha, self.beta, self.gamma])


@dataclass(frozen=True)
class InitTimeParams:
    """Gaussian initialization-time model for one backend."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        check_positive("mean", self.mean)
        check_positive("std", self.std, strict=False)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one noisy initialization time (truncated below at 10 % mean)."""
        return max(0.1 * self.mean, float(rng.normal(self.mean, self.std)))


@dataclass(frozen=True)
class PerfProfile:
    """Complete ground-truth profile of one inference function.

    ``mem_knee_gb`` is the knee point of §IV-A2: SMIless provisions memory
    slightly above it, so memory never bottlenecks and does not enter the
    latency law.  ``max_batch`` bounds the adaptive-batching search.

    Two optional extensions open regimes beyond the paper (both default to
    absent, keeping the fixed-latency path bit-identical):

    - ``service_model`` — a :class:`~repro.hardware.servicetime
      .ServiceTimeModel` (e.g. :class:`~repro.hardware.servicetime
      .TokenServiceTime`) that replaces the Eq. 1/2 law; ``cpu``/``gpu``
      must then hold the model's typical-work equivalent law so planners
      that never pass work stay consistent;
    - ``swap_gpu`` — the host→GPU swap-in time model of a swap-capable
      model (Torpor/FaaSwap-style).  Swap-in must be strictly faster than
      a GPU cold start (validated here), which is what makes paging a
      host-resident model preferable to re-initializing it.
    """

    name: str
    cpu: LatencyParams
    gpu: LatencyParams
    init_cpu: InitTimeParams
    init_gpu: InitTimeParams
    mem_knee_gb: float = 2.0
    min_batch: int = 1
    max_batch: int = 32
    service_model: ServiceTimeModel | None = None
    swap_gpu: InitTimeParams | None = None

    def __post_init__(self) -> None:
        if self.swap_gpu is not None and self.swap_gpu.mean >= self.init_gpu.mean:
            raise ValueError(
                f"swap-in must beat a cold start: swap mean "
                f"{self.swap_gpu.mean} >= init_gpu mean {self.init_gpu.mean}"
            )

    def latency_params(self, backend: Backend) -> LatencyParams:
        """The latency law for ``backend``."""
        return self.cpu if backend is Backend.CPU else self.gpu

    def init_params(self, backend: Backend) -> InitTimeParams:
        """The initialization model for ``backend``."""
        return self.init_cpu if backend is Backend.CPU else self.init_gpu

    def expected_inference_time(
        self,
        config: HardwareConfig,
        batch: int = 1,
        work: WorkUnit | None = None,
    ) -> float:
        """Noise-free inference latency under ``config`` for ``batch`` requests.

        ``work`` feeds the pluggable ``service_model`` when one is
        attached; profiles without one evaluate the Eq. 1/2 law directly
        (the original, golden-pinned code path).
        """
        if self.service_model is not None:
            return self.service_model.expected(config, batch, work)
        if config.backend is Backend.CPU:
            return self.cpu.latency(config.cpu_cores, batch)
        return self.gpu.latency(config.gpu_fraction, batch)

    def expected_init_time(self, config: HardwareConfig) -> float:
        """Noise-free (mean) initialization time under ``config``."""
        return self.init_params(config.backend).mean

    @property
    def swap_capable(self) -> bool:
        """Whether this model can page host↔GPU instead of cold-starting."""
        return self.swap_gpu is not None

    def expected_swap_time(self, config: HardwareConfig) -> float | None:
        """Noise-free swap-in time, or ``None`` when swap does not apply."""
        if self.swap_gpu is None or config.backend is not Backend.GPU:
            return None
        return self.swap_gpu.mean


class GroundTruthPerformance:
    """Noisy oracle standing in for real executions on the testbed.

    The simulator asks this object how long an inference or an
    initialization *actually* takes; the profiler asks it for measurement
    samples.  Separate RNG streams keep workload generation and timing noise
    independent.
    """

    def __init__(
        self,
        profile: PerfProfile,
        rng: int | np.random.Generator | None = None,
        *,
        noisy: bool = True,
    ) -> None:
        self.profile = profile
        self._rng = ensure_rng(rng)
        self.noisy = noisy
        # Deterministic latency-law means per (config, batch); noise is
        # sampled on top, so caching cannot perturb the RNG draw sequence.
        self._mean_cache: dict[tuple[HardwareConfig, int], float] = {}

    def inference_time(
        self,
        config: HardwareConfig,
        batch: int = 1,
        work: WorkUnit | None = None,
    ) -> float:
        """Sample the wall-clock inference time of one execution.

        ``work`` (a :class:`~repro.hardware.servicetime.WorkUnit`) routes
        through the profile's pluggable service-time model; work-free calls
        take the original deterministic-mean path bit for bit — either way
        exactly one noise draw is consumed per call, so attaching work to
        some stages never perturbs the noise stream of others.
        """
        key = (config, batch) if work is None else (config, batch, work)
        base = self._mean_cache.get(key)
        if base is None:
            base = self.profile.expected_inference_time(config, batch, work)
            self._mean_cache[key] = base
        if not self.noisy:
            return base
        sigma = (
            CPU_INFERENCE_NOISE
            if config.backend is Backend.CPU
            else GPU_INFERENCE_NOISE
        )
        return float(base * self._rng.lognormal(mean=0.0, sigma=sigma))

    def init_time(self, config: HardwareConfig) -> float:
        """Sample the wall-clock initialization (cold-start) time."""
        params = self.profile.init_params(config.backend)
        if not self.noisy:
            return params.mean
        return params.sample(self._rng)

    @property
    def supports_swap(self) -> bool:
        """Whether the underlying model is swap-capable (GPU paging)."""
        return self.profile.swap_gpu is not None

    def swap_in_time(self, config: HardwareConfig) -> float:
        """Sample the host→GPU swap-in time of a resident model.

        Only swap-capable profiles may be asked — the default regime never
        calls this, so its RNG draw sequence is untouched.
        """
        params = self.profile.swap_gpu
        if params is None or config.backend is not Backend.GPU:
            raise ValueError(
                f"model {self.profile.name!r} cannot swap onto {config.key}"
            )
        if not self.noisy:
            return params.mean
        return params.sample(self._rng)

    def sample_inference(
        self, config: HardwareConfig, batch: int, n: int
    ) -> np.ndarray:
        """Draw ``n`` measurement samples (profiler input)."""
        return np.array([self.inference_time(config, batch) for _ in range(n)])

    def sample_init(self, config: HardwareConfig, n: int) -> np.ndarray:
        """Draw ``n`` initialization samples (profiler input)."""
        return np.array([self.init_time(config) for _ in range(n)])

    def sample_swap(self, config: HardwareConfig, n: int) -> np.ndarray:
        """Draw ``n`` swap-in samples (profiler input, swap-capable only)."""
        return np.array([self.swap_in_time(config) for _ in range(n)])

"""Ground-truth performance model for the simulated inference functions.

The paper serves real PyTorch models; we do not have the authors' cluster,
so each Table I model is replaced by an analytic ground-truth that follows
the paper's own latency law (Eq. 1 for CPU, Eq. 2 for GPU):

    inference_time = lambda * B * (alpha / resources + beta) + gamma

plus measurement noise.  The Offline Profiler never sees these parameters —
it observes noisy timing samples and re-fits the law, exactly as the real
profiler fits measurements from Prometheus.  CPU execution carries more
interference noise than GPU execution, matching the paper's observation
that GPU inference-time profiling is more precise (Fig. 11b).

Initialization times are Gaussian around a per-backend mean: GPU cold starts
are slower than CPU cold starts (CUDA context + host-to-device weight
transfer, §IV-A1) and noisier (PCIe/network contention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.configs import Backend, HardwareConfig
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

#: Relative (lognormal sigma) inference-noise level per backend.  CPU runs
#: suffer more interference (cache, co-located containers) than MPS slices.
CPU_INFERENCE_NOISE: float = 0.08
GPU_INFERENCE_NOISE: float = 0.03


@dataclass(frozen=True)
class LatencyParams:
    """Parameters of the Amdahl-law latency model of Eq. (1)/(2).

    ``alpha`` is the parallelizable computational volume, ``beta`` the serial
    per-item overhead, ``gamma`` the network/transfer constant, and
    ``lam`` the batching degradation coefficient (λ in the paper).
    """

    lam: float
    alpha: float
    beta: float
    gamma: float

    def __post_init__(self) -> None:
        check_positive("lam", self.lam)
        check_positive("alpha", self.alpha)
        check_positive("beta", self.beta, strict=False)
        check_positive("gamma", self.gamma, strict=False)

    def latency(self, resources: float, batch: int = 1) -> float:
        """Evaluate the latency law for ``resources`` (cores or GPU fraction)."""
        check_positive("resources", resources)
        check_positive("batch", batch)
        return self.lam * batch * (self.alpha / resources + self.beta) + self.gamma

    def as_vector(self) -> np.ndarray:
        """Parameters as ``[lam, alpha, beta, gamma]`` (profiler fitting)."""
        return np.array([self.lam, self.alpha, self.beta, self.gamma])


@dataclass(frozen=True)
class InitTimeParams:
    """Gaussian initialization-time model for one backend."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        check_positive("mean", self.mean)
        check_positive("std", self.std, strict=False)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one noisy initialization time (truncated below at 10 % mean)."""
        return max(0.1 * self.mean, float(rng.normal(self.mean, self.std)))


@dataclass(frozen=True)
class PerfProfile:
    """Complete ground-truth profile of one inference function.

    ``mem_knee_gb`` is the knee point of §IV-A2: SMIless provisions memory
    slightly above it, so memory never bottlenecks and does not enter the
    latency law.  ``max_batch`` bounds the adaptive-batching search.
    """

    name: str
    cpu: LatencyParams
    gpu: LatencyParams
    init_cpu: InitTimeParams
    init_gpu: InitTimeParams
    mem_knee_gb: float = 2.0
    min_batch: int = 1
    max_batch: int = 32

    def latency_params(self, backend: Backend) -> LatencyParams:
        """The latency law for ``backend``."""
        return self.cpu if backend is Backend.CPU else self.gpu

    def init_params(self, backend: Backend) -> InitTimeParams:
        """The initialization model for ``backend``."""
        return self.init_cpu if backend is Backend.CPU else self.init_gpu

    def expected_inference_time(self, config: HardwareConfig, batch: int = 1) -> float:
        """Noise-free inference latency under ``config`` for ``batch`` requests."""
        if config.backend is Backend.CPU:
            return self.cpu.latency(config.cpu_cores, batch)
        return self.gpu.latency(config.gpu_fraction, batch)

    def expected_init_time(self, config: HardwareConfig) -> float:
        """Noise-free (mean) initialization time under ``config``."""
        return self.init_params(config.backend).mean


class GroundTruthPerformance:
    """Noisy oracle standing in for real executions on the testbed.

    The simulator asks this object how long an inference or an
    initialization *actually* takes; the profiler asks it for measurement
    samples.  Separate RNG streams keep workload generation and timing noise
    independent.
    """

    def __init__(
        self,
        profile: PerfProfile,
        rng: int | np.random.Generator | None = None,
        *,
        noisy: bool = True,
    ) -> None:
        self.profile = profile
        self._rng = ensure_rng(rng)
        self.noisy = noisy
        # Deterministic latency-law means per (config, batch); noise is
        # sampled on top, so caching cannot perturb the RNG draw sequence.
        self._mean_cache: dict[tuple[HardwareConfig, int], float] = {}

    def inference_time(self, config: HardwareConfig, batch: int = 1) -> float:
        """Sample the wall-clock inference time of one execution."""
        key = (config, batch)
        base = self._mean_cache.get(key)
        if base is None:
            base = self.profile.expected_inference_time(config, batch)
            self._mean_cache[key] = base
        if not self.noisy:
            return base
        sigma = (
            CPU_INFERENCE_NOISE
            if config.backend is Backend.CPU
            else GPU_INFERENCE_NOISE
        )
        return float(base * self._rng.lognormal(mean=0.0, sigma=sigma))

    def init_time(self, config: HardwareConfig) -> float:
        """Sample the wall-clock initialization (cold-start) time."""
        params = self.profile.init_params(config.backend)
        if not self.noisy:
            return params.mean
        return params.sample(self._rng)

    def sample_inference(
        self, config: HardwareConfig, batch: int, n: int
    ) -> np.ndarray:
        """Draw ``n`` measurement samples (profiler input)."""
        return np.array([self.inference_time(config, batch) for _ in range(n)])

    def sample_init(self, config: HardwareConfig, n: int) -> np.ndarray:
        """Draw ``n`` initialization samples (profiler input)."""
        return np.array([self.init_time(config) for _ in range(n)])

"""Pluggable service-time models (the perf-model protocol seam).

The paper's latency law (Eq. 1/2) makes every stage's service time a fixed
function of (configuration, batch).  Two related systems break that
assumption productively: Revati-style LLM serving, where per-invocation
token counts drive long, highly variable service times split into a
prefill and a decode phase, and Torpor/FaaSwap-style GPU model swapping,
where paging a host-resident model onto the GPU is far cheaper than a
cold start.

This module defines the seam both regimes plug into:

- :class:`WorkUnit` — the per-invocation work descriptor (token counts);
- :class:`ServiceTimeModel` — the protocol every service-time
  implementation satisfies (``expected(config, batch, work)``);
- :class:`FixedServiceTime` — the default deterministic implementation,
  equivalent to evaluating the Eq. 1/2 law directly (profiles without an
  explicit model keep the original code path, bit-identical);
- :class:`TokenServiceTime` — token-driven service times with a
  tokens/sec throughput curve per backend and a prefill/decode split;
- :class:`PerformanceOracle` — the structural interface the gateway
  consumes (``inference_time`` / ``init_time`` / ``swap_in_time``), so the
  simulator depends on the protocol rather than on
  :class:`~repro.hardware.perfmodel.GroundTruthPerformance` concretely.

This module sits below :mod:`repro.hardware.perfmodel` (it imports only
``configs``), so the concrete profile classes can import it freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.hardware.configs import Backend, HardwareConfig
from repro.utils.validation import check_positive


def resources_of(config: HardwareConfig) -> float:
    """The resource quantity entering the latency law (cores or fraction)."""
    if config.backend is Backend.CPU:
        return float(config.cpu_cores)
    return config.gpu_fraction


@dataclass(frozen=True)
class WorkUnit:
    """Per-invocation work descriptor for variable-service-time stages.

    For the LLM archetype ``tokens_in`` is the prompt length (prefill) and
    ``tokens_out`` the generated length (decode).  Immutable and hashable
    so oracle memoization can key on it.
    """

    tokens_in: int
    tokens_out: int

    def __post_init__(self) -> None:
        check_positive("tokens_in", self.tokens_in, strict=False)
        check_positive("tokens_out", self.tokens_out, strict=False)
        if self.tokens_in + self.tokens_out <= 0:
            raise ValueError("work unit must carry at least one token")

    @property
    def total_tokens(self) -> int:
        """Total token volume of this invocation."""
        return self.tokens_in + self.tokens_out

    @classmethod
    def combine(cls, works: Iterable["WorkUnit"]) -> "WorkUnit":
        """Padded-batch semantics: a batch runs at the longest member's work."""
        works = list(works)
        if not works:
            raise ValueError("cannot combine an empty batch of work units")
        return cls(
            tokens_in=max(w.tokens_in for w in works),
            tokens_out=max(w.tokens_out for w in works),
        )


@runtime_checkable
class ServiceTimeModel(Protocol):
    """Protocol: noise-free expected service time of one stage execution.

    ``work`` is ``None`` for planning-time queries (profiler fits, policy
    optimization); implementations must answer with a typical-work
    estimate so the planning layers need no knowledge of the regime.
    """

    def expected(
        self,
        config: HardwareConfig,
        batch: int = 1,
        work: WorkUnit | None = None,
    ) -> float:
        """Expected wall-clock service time."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class InitModel(Protocol):
    """Protocol: wall-clock cost of bringing an instance up."""

    def init_time(self, config: HardwareConfig) -> float:
        """Sampled (or expected) cold-start initialization time."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class PerformanceOracle(Protocol):
    """What the gateway requires of a performance oracle.

    :class:`~repro.hardware.perfmodel.GroundTruthPerformance` satisfies
    this structurally; alternative oracles (replayed measurements, learned
    simulators) only need these members.
    """

    def inference_time(
        self,
        config: HardwareConfig,
        batch: int = 1,
        work: WorkUnit | None = None,
    ) -> float:
        """Sampled wall-clock service time of one execution."""
        ...  # pragma: no cover - protocol

    def init_time(self, config: HardwareConfig) -> float:
        """Sampled wall-clock cold-start time."""
        ...  # pragma: no cover - protocol

    def swap_in_time(self, config: HardwareConfig) -> float:
        """Sampled host→GPU swap-in time (swap-capable profiles only)."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class FixedServiceTime:
    """The default deterministic model: the Eq. 1/2 law, work ignored.

    ``cpu`` / ``gpu`` duck-type
    :class:`~repro.hardware.perfmodel.LatencyParams` (anything exposing
    ``latency(resources, batch)``).  Profiles without an explicit
    ``service_model`` never construct this class — they keep the original
    inline evaluation, so the default path stays bit-identical — but the
    two are algebraically the same expression and a differential test pins
    their equality.
    """

    cpu: object | None
    gpu: object | None

    def expected(
        self,
        config: HardwareConfig,
        batch: int = 1,
        work: WorkUnit | None = None,
    ) -> float:
        params = self.cpu if config.backend is Backend.CPU else self.gpu
        if params is None:
            raise ValueError(f"no latency law for backend {config.backend}")
        return params.latency(resources_of(config), batch)


@dataclass(frozen=True)
class TokenThroughputCurve:
    """Per-token latency law: seconds per token at a given resource level.

    ``lam * (alpha / resources + beta)`` — the Eq. 1/2 shape applied per
    token, so per-token throughput saturates with resources exactly like
    whole-stage latency does.
    """

    lam: float
    alpha: float
    beta: float

    def __post_init__(self) -> None:
        check_positive("lam", self.lam)
        check_positive("alpha", self.alpha)
        check_positive("beta", self.beta, strict=False)

    def per_token(self, resources: float) -> float:
        """Seconds per token at ``resources`` (cores or GPU fraction)."""
        check_positive("resources", resources)
        return self.lam * (self.alpha / resources + self.beta)


@dataclass(frozen=True)
class TokenBackendCurve:
    """One backend's token curves: prefill + decode + fixed overhead."""

    prefill: TokenThroughputCurve
    decode: TokenThroughputCurve
    gamma: float = 0.0

    def __post_init__(self) -> None:
        check_positive("gamma", self.gamma, strict=False)


@dataclass(frozen=True)
class TokenServiceTime:
    """Token-driven service times (the LLM archetype, Revati-style).

    Prefill processes the prompt (``tokens_in``) in parallel across the
    batch; decode generates ``tokens_out`` tokens autoregressively.  Both
    phases scale linearly in their token counts — service time is strictly
    monotone in each (pinned by a property test) — and a batch runs at its
    longest member's work (padding).  ``typical`` answers work-free
    planning queries, so profilers and policies see a deterministic
    stage exactly as they do under the fixed law.
    """

    cpu: TokenBackendCurve | None
    gpu: TokenBackendCurve | None
    typical: WorkUnit

    def __post_init__(self) -> None:
        if self.cpu is None and self.gpu is None:
            raise ValueError("token model needs at least one backend curve")

    def _curve(self, config: HardwareConfig) -> TokenBackendCurve:
        curve = self.cpu if config.backend is Backend.CPU else self.gpu
        if curve is None:
            raise ValueError(f"no token curve for backend {config.backend}")
        return curve

    def split(
        self,
        config: HardwareConfig,
        batch: int = 1,
        work: WorkUnit | None = None,
    ) -> tuple[float, float]:
        """(prefill_seconds, decode_seconds) excluding the fixed overhead."""
        check_positive("batch", batch)
        curve = self._curve(config)
        w = self.typical if work is None else work
        r = resources_of(config)
        prefill = batch * w.tokens_in * curve.prefill.per_token(r)
        decode = batch * w.tokens_out * curve.decode.per_token(r)
        return prefill, decode

    def expected(
        self,
        config: HardwareConfig,
        batch: int = 1,
        work: WorkUnit | None = None,
    ) -> float:
        prefill, decode = self.split(config, batch, work)
        return prefill + decode + self._curve(config).gamma

    def equivalent_law(self, backend: Backend) -> tuple[float, float, float, float]:
        """(lam, alpha, beta, gamma) of the typical-work whole-stage law.

        Collapsing both phases at ``typical`` work yields exactly the
        Eq. 1/2 shape, so token profiles can also carry standard
        :class:`~repro.hardware.perfmodel.LatencyParams` for planners
        that never pass work.
        """
        curve = self.cpu if backend is Backend.CPU else self.gpu
        if curve is None:
            raise ValueError(f"no token curve for backend {backend}")
        t_in, t_out = self.typical.tokens_in, self.typical.tokens_out
        alpha = (
            t_in * curve.prefill.lam * curve.prefill.alpha
            + t_out * curve.decode.lam * curve.decode.alpha
        )
        beta = (
            t_in * curve.prefill.lam * curve.prefill.beta
            + t_out * curve.decode.lam * curve.decode.beta
        )
        return 1.0, alpha, beta, curve.gamma

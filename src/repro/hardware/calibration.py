"""Calibrating performance profiles from real measurements.

Downstream users bringing *their own* models to the library need a
:class:`~repro.hardware.perfmodel.PerfProfile` for them.  This module turns
a handful of wall-clock measurements — the kind a quick benchmark script
produces — into the Eq. (1)/(2) parameterization:

- :func:`latency_params_from_measurements` fits (lam*alpha, lam*beta, gamma)
  from (resources, batch, seconds) triples, like the Offline Profiler but
  exposed as a calibration API with explicit residual reporting;
- :func:`profile_from_measurements` assembles a full profile from CPU and
  GPU measurement sets plus init-time samples;
- :func:`speedup_curve` tabulates the fitted scaling law for sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.perfmodel import InitTimeParams, LatencyParams, PerfProfile
from repro.utils.validation import check_positive

# NOTE: repro.profiler imports are deferred into the functions below —
# profiler modules import repro.dag, which imports repro.hardware, so a
# top-level import here would close an import cycle through the package
# __init__ files.


@dataclass(frozen=True)
class Measurement:
    """One timing observation: ``resources`` cores (or GPU fraction),
    ``batch`` requests, ``seconds`` of wall-clock inference time."""

    resources: float
    batch: int
    seconds: float

    def __post_init__(self) -> None:
        check_positive("resources", self.resources)
        check_positive("batch", self.batch)
        check_positive("seconds", self.seconds)


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted law plus its goodness-of-fit on the calibration set."""

    params: LatencyParams
    smape_percent: float
    n_measurements: int


def latency_params_from_measurements(
    measurements: list[Measurement],
) -> CalibrationResult:
    """Fit Eq. (1)/(2) to measurements and report the residual SMAPE.

    The lam/alpha ambiguity of the law is resolved as the profiler does:
    ``lam = 1`` with the product folded into alpha and beta.
    """
    from repro.profiler.fitting import fit_latency_model, smape

    if len(measurements) < 3:
        raise ValueError(f"need >= 3 measurements, got {len(measurements)}")
    r = np.array([m.resources for m in measurements], dtype=float)
    b = np.array([m.batch for m in measurements], dtype=float)
    t = np.array([m.seconds for m in measurements], dtype=float)
    model = fit_latency_model(r, b, t)
    params = LatencyParams(lam=1.0, alpha=model.a, beta=model.b, gamma=model.c)
    predicted = model.predict(r, b)
    return CalibrationResult(
        params=params,
        smape_percent=smape(t, predicted),
        n_measurements=len(measurements),
    )


def init_params_from_samples(samples: list[float]) -> InitTimeParams:
    """Gaussian init model from repeated cold-start timings."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError(f"need >= 2 init samples, got {arr.size}")
    if (arr <= 0).any():
        raise ValueError("init samples must be positive")
    return InitTimeParams(mean=float(arr.mean()), std=float(arr.std(ddof=1)) or 1e-6)


def profile_from_measurements(
    name: str,
    cpu_measurements: list[Measurement],
    gpu_measurements: list[Measurement],
    cpu_init_samples: list[float],
    gpu_init_samples: list[float],
    *,
    mem_knee_gb: float = 2.0,
    max_batch: int = 32,
    max_smape: float = 25.0,
) -> PerfProfile:
    """Assemble a :class:`PerfProfile` from raw measurements.

    Raises if either backend's fit exceeds ``max_smape`` — a bad fit means
    the optimizer would reason from numbers that do not describe the model.
    """
    cpu = latency_params_from_measurements(cpu_measurements)
    gpu = latency_params_from_measurements(gpu_measurements)
    for backend, result in (("cpu", cpu), ("gpu", gpu)):
        if result.smape_percent > max_smape:
            raise ValueError(
                f"{backend} fit for {name!r} has SMAPE "
                f"{result.smape_percent:.1f}% > {max_smape}%: "
                "measurements do not follow the Eq. (1)/(2) law"
            )
    return PerfProfile(
        name=name,
        cpu=cpu.params,
        gpu=gpu.params,
        init_cpu=init_params_from_samples(cpu_init_samples),
        init_gpu=init_params_from_samples(gpu_init_samples),
        mem_knee_gb=mem_knee_gb,
        max_batch=max_batch,
    )


def speedup_curve(
    params: LatencyParams, resource_levels: list[float], batch: int = 1
) -> list[tuple[float, float, float]]:
    """(resources, seconds, speedup-vs-first) rows of the fitted law."""
    if not resource_levels:
        raise ValueError("resource_levels must not be empty")
    base = params.latency(resource_levels[0], batch)
    return [
        (r, params.latency(r, batch), base / params.latency(r, batch))
        for r in resource_levels
    ]

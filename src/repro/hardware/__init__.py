"""Heterogeneous hardware substrate: configurations, pricing, ground truth.

This package models the configuration space the paper's cluster exposes —
CPU containers with 1/2/4/8/16 cores (AWS c6g pricing) and GPU containers in
MPS slices of 10 % of a V100-class device (AWS p3.2xlarge pricing) — plus
the analytic ground-truth latency and initialization models that stand in
for the real ML models served on the authors' testbed (see DESIGN.md §1).
"""

from repro.hardware.configs import (
    CPU_CORE_OPTIONS,
    CPU_CORE_PRICE_PER_HOUR,
    GPU_FRACTION_OPTIONS,
    GPU_PRICE_PER_HOUR,
    MPS_UNIT,
    Backend,
    ConfigurationSpace,
    HardwareConfig,
)
from repro.hardware.calibration import (
    CalibrationResult,
    Measurement,
    latency_params_from_measurements,
    profile_from_measurements,
    speedup_curve,
)
from repro.hardware.perfmodel import (
    GroundTruthPerformance,
    InitTimeParams,
    LatencyParams,
    PerfProfile,
)
from repro.hardware.servicetime import (
    FixedServiceTime,
    InitModel,
    PerformanceOracle,
    ServiceTimeModel,
    TokenBackendCurve,
    TokenServiceTime,
    TokenThroughputCurve,
    WorkUnit,
)

__all__ = [
    "Backend",
    "HardwareConfig",
    "ConfigurationSpace",
    "CPU_CORE_OPTIONS",
    "GPU_FRACTION_OPTIONS",
    "CPU_CORE_PRICE_PER_HOUR",
    "GPU_PRICE_PER_HOUR",
    "MPS_UNIT",
    "LatencyParams",
    "InitTimeParams",
    "PerfProfile",
    "GroundTruthPerformance",
    "ServiceTimeModel",
    "InitModel",
    "PerformanceOracle",
    "FixedServiceTime",
    "TokenThroughputCurve",
    "TokenBackendCurve",
    "TokenServiceTime",
    "WorkUnit",
    "Measurement",
    "CalibrationResult",
    "latency_params_from_measurements",
    "profile_from_measurements",
    "speedup_curve",
]

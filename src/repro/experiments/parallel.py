"""Parallel experiment grid: fan simulation cells across worker processes.

A *cell* is one (application, policy, SLA, seed) simulation.  Figure-style
experiments are embarrassingly parallel across cells — each cell builds its
own environment from a picklable :class:`EnvSpec` and runs a fresh
simulator — so the grid fans them over a ``ProcessPoolExecutor``.

Determinism: a cell's outcome depends only on its spec (environment seed
and simulator seed), never on scheduling order, so a parallel grid returns
bit-identical summaries to a serial one.  ``executor.map`` preserves input
order, which keeps result lists stable too.

Worker processes memoize environments per :class:`EnvSpec` (profiling and
trace synthesis are the expensive, deterministic part), so a sweep of many
policies over one environment pays the build cost once per process.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.plan import FaultPlan
    from repro.overload.spec import OverloadSpec


@dataclass(frozen=True)
class EnvSpec:
    """Picklable recipe for :func:`repro.experiments.runners.build_environment`."""

    app: str
    preset: str = "steady"
    sla: float = 2.0
    duration: float = 600.0
    train_duration: float = 3600.0
    seed: int = 0
    #: Path to a published Azure Functions CSV whose busiest row replays
    #: as the evaluation trace (``None`` keeps the synthetic generator).
    azure_trace: str | None = None


@dataclass(frozen=True)
class CellSpec:
    """One grid cell: an environment recipe plus a policy and simulator seed.

    ``trace_dir`` opts the cell into telemetry: the run is recorded with a
    :class:`~repro.telemetry.recorder.TraceRecorder` and the event stream is
    written as JSONL into that directory (one file per cell, named after the
    cell's coordinates).  ``None`` — the default — records nothing and adds
    no overhead.

    ``init_failure_rate`` injects per-warmup initialization failures;
    ``faults`` attaches a full :class:`~repro.faults.FaultPlan` (machine
    outages, execution faults, stragglers, resilience knobs).  Both are
    picklable, so chaos cells fan across workers like any other cell.

    ``retention`` selects record retention ("full" keeps every record,
    "sketch" folds completions into streaming accumulators for
    O(1)-memory runs — see ``docs/performance.md``).

    ``shards``/``slices_per_app`` opt the cell into the shard plane
    (:mod:`repro.sharding`): the app's trace is cut into
    ``slices_per_app`` independent time-slices, fanned over ``shards``
    worker processes, and merged at the barrier.  Requires
    ``retention="sketch"`` (snapshots are streaming-state extracts) and
    no ``trace_dir`` (per-unit runtimes would shred one telemetry
    stream); merged non-distributional metrics are bit-identical for any
    ``shards`` value over the same ``slices_per_app``.
    """

    env: EnvSpec
    policy: str
    sim_seed: int = 3
    trace_dir: str | None = None
    init_failure_rate: float = 0.0
    faults: "FaultPlan | None" = None
    #: Overload-resilience spec (bounded queues, admission control,
    #: circuit breakers, brownout); ``None`` leaves every hook inert.
    overload: "OverloadSpec | None" = None
    retention: str = "full"
    shards: int = 1
    slices_per_app: int = 1


@dataclass(frozen=True)
class MultiAppCellSpec:
    """One co-run cell: several environments sharing a cluster (§VII-A).

    ``seeding`` selects the per-app seed derivation of
    :class:`~repro.simulator.multiapp.MultiAppSimulator` ("name" is
    order-independent, "legacy" positional).  ``trace_dir`` opts the cell
    into telemetry exactly like :class:`CellSpec` (one JSONL file for the
    whole co-run, all tenants interleaved).
    """

    envs: tuple[EnvSpec, ...]
    policy: str
    sim_seed: int = 3
    seeding: str = "name"
    trace_dir: str | None = None
    init_failure_rate: float = 0.0
    faults: "FaultPlan | None" = None
    overload: "OverloadSpec | None" = None
    retention: str = "full"
    #: Shard-plane opt-in, as on :class:`CellSpec`.  Note a sharded
    #: multi-app cell runs each (app × slice) unit on its *own* cluster —
    #: it measures the apps side by side without cross-tenant
    #: back-pressure, unlike the ``shards=1`` co-run path.
    shards: int = 1
    slices_per_app: int = 1


@dataclass(frozen=True)
class CellResult:
    """Outcome of one cell, with timing for the perf microbench.

    ``extras`` carries counters absent from the golden-pinned
    ``summary()`` key set (conservation terms, swap-in counts): flat for
    a solo cell, keyed by app name for a co-run cell, empty for sharded
    cells (the merged snapshot's summary is the contract there).
    """

    spec: CellSpec
    summary: dict
    wall_clock: float
    events_processed: int
    extras: dict = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        """Simulator event throughput of this cell."""
        if self.wall_clock <= 0:
            return float("inf")
        return self.events_processed / self.wall_clock


@lru_cache(maxsize=8)
def _environment(spec: EnvSpec):
    """Per-process environment cache (profiling + trace synthesis are pure)."""
    from repro.experiments.runners import build_environment

    return build_environment(
        spec.app,
        preset=spec.preset,
        sla=spec.sla,
        duration=spec.duration,
        train_duration=spec.train_duration,
        seed=spec.seed,
        azure_trace=spec.azure_trace,
    )


def _make_recorder(spec: CellSpec | MultiAppCellSpec):
    """A live recorder when the cell opted into tracing, else ``None``."""
    if spec.trace_dir is None:
        return None
    from repro.telemetry.recorder import TraceRecorder

    return TraceRecorder()


def cell_trace_path(spec: CellSpec | MultiAppCellSpec) -> Path:
    """Where a traced cell writes its JSONL (named after its coordinates)."""
    assert spec.trace_dir is not None
    if isinstance(spec, MultiAppCellSpec):
        apps = "+".join(e.app for e in spec.envs)
        env = spec.envs[0]
    else:
        apps = spec.env.app
        env = spec.env
    name = (
        f"{apps}-{env.preset}-sla{env.sla:g}-{spec.policy}"
        f"-seed{spec.sim_seed}.jsonl"
    )
    return Path(spec.trace_dir) / name


def _flush_trace(spec: CellSpec | MultiAppCellSpec, recorder) -> None:
    if recorder is None:
        return
    path = cell_trace_path(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    recorder.write_jsonl(path)


def _metrics_extras(metrics, *, arrivals: int | None = None) -> dict:
    """Conservation and swap counters not part of the pinned summary keys.

    ``arrivals`` should be the *trace's* invocation count so that the
    extended conservation identity ``arrivals + injected_arrivals ==
    completed + unfinished + timed_out + shed + rejected`` is an
    independent cross-check, not a tautology (it reduces to the classic
    three-term identity when no overload spec or flash crowd is attached);
    ``None`` falls back to the metrics-side sum (sharded paths that never
    see the trace).
    """
    accounted = (
        metrics.n_completed
        + metrics.unfinished
        + metrics.timed_out
        + metrics.shed
        + metrics.rejected
        - metrics.injected_arrivals
    )
    return {
        "completed": metrics.n_completed,
        "unfinished": metrics.unfinished,
        "timed_out": metrics.timed_out,
        "shed": metrics.shed,
        "rejected": metrics.rejected,
        "injected_arrivals": metrics.injected_arrivals,
        "peak_queue_depth": metrics.peak_queue_depth,
        "arrivals": accounted if arrivals is None else arrivals,
        "initializations": metrics.initializations,
        "swap_ins": metrics.swap_ins,
    }


def run_cell(spec: CellSpec | MultiAppCellSpec) -> CellResult:
    """Build the cell's environment(s), serve the trace(s), time the run.

    A :class:`CellSpec` runs one app solo; a :class:`MultiAppCellSpec`
    co-runs its apps on one shared cluster and reports a summary dict
    keyed by app name.  Cells with a ``trace_dir`` also leave a JSONL
    telemetry trace behind (written after the clock stops, so tracing does
    not distort the perf numbers beyond event construction itself).
    """
    if spec.shards > 1 or spec.slices_per_app > 1:
        return _run_sharded_cell(spec)
    if isinstance(spec, MultiAppCellSpec):
        return _run_multiapp_cell(spec)
    from repro.simulator import ServerlessSimulator

    env = _environment(spec.env)
    recorder = _make_recorder(spec)
    start = time.perf_counter()
    # Policy construction is part of the cell: policies may train
    # predictors, which dominates some cells' cost.
    sim = ServerlessSimulator(
        env.app,
        env.trace,
        env.make_policy(spec.policy),
        seed=spec.sim_seed,
        recorder=recorder,
        init_failure_rate=spec.init_failure_rate,
        faults=spec.faults,
        overload=spec.overload,
        retention=spec.retention,
    )
    metrics = sim.run()
    wall = time.perf_counter() - start
    _flush_trace(spec, recorder)
    return CellResult(
        spec=spec,
        summary=metrics.summary(),
        wall_clock=wall,
        events_processed=sim.events.processed,
        extras=_metrics_extras(metrics, arrivals=len(env.trace)),
    )


def _run_sharded_cell(spec: CellSpec | MultiAppCellSpec) -> CellResult:
    """Run a shard-plane cell: scatter units over processes, merge, time.

    ``wall_clock`` is the barrier wall time (what a user waits for);
    ``events_processed`` sums over every unit.  The summary keeps the
    cell-kind convention: flat dict for a solo :class:`CellSpec`, dict
    keyed by app for a :class:`MultiAppCellSpec`.
    """
    # Late import: repro.sharding imports this module for EnvSpec and the
    # environment cache.
    from repro.sharding import ShardPlan, run_sharded

    if spec.retention != "sketch":
        raise ValueError(
            "sharded cells require retention='sketch' (snapshots extract "
            f"streaming state); got retention={spec.retention!r}"
        )
    if spec.trace_dir is not None:
        raise ValueError(
            "sharded cells cannot record telemetry traces: each unit runs "
            "as its own runtime, which would shred one JSONL stream "
            "(set trace_dir=None or shards=slices_per_app=1)"
        )
    envs = spec.envs if isinstance(spec, MultiAppCellSpec) else (spec.env,)
    plan = ShardPlan.for_apps(
        [e.app for e in envs],
        n_shards=spec.shards,
        slices_per_app=spec.slices_per_app,
    )
    start = time.perf_counter()
    snapshot = run_sharded(
        plan,
        envs,
        spec.policy,
        sim_seed=spec.sim_seed,
        init_failure_rate=spec.init_failure_rate,
        faults=spec.faults,
        overload=spec.overload,
    )
    wall = time.perf_counter() - start
    summary = snapshot.summary()
    if isinstance(spec, CellSpec):
        summary = summary[spec.env.app]
    return CellResult(
        spec=spec,
        summary=summary,
        wall_clock=wall,
        events_processed=snapshot.events_processed,
    )


def _run_multiapp_cell(spec: MultiAppCellSpec) -> CellResult:
    from repro.simulator import Deployment, MultiAppSimulator

    envs = [_environment(e) for e in spec.envs]
    by_app = {env.app.name: env for env in envs}
    recorder = _make_recorder(spec)
    start = time.perf_counter()
    deployments = [
        Deployment(env.app, env.trace, env.make_policy(spec.policy))
        for env in envs
    ]
    sim = MultiAppSimulator(
        deployments,
        seed=spec.sim_seed,
        seeding=spec.seeding,
        recorder=recorder,
        init_failure_rate=spec.init_failure_rate,
        faults=spec.faults,
        overload=spec.overload,
        retention=spec.retention,
    )
    results = sim.run()
    wall = time.perf_counter() - start
    _flush_trace(spec, recorder)
    return CellResult(
        spec=spec,
        summary={name: m.summary() for name, m in results.items()},
        wall_clock=wall,
        events_processed=sim.events.processed,
        extras={
            name: _metrics_extras(
                m, arrivals=len(by_app[name].trace) if name in by_app else None
            )
            for name, m in results.items()
        },
    )


def run_grid(
    cells: Sequence[CellSpec | MultiAppCellSpec], *, workers: int = 1
) -> list[CellResult]:
    """Run every cell, fanning across ``workers`` processes when > 1.

    Results come back in input order regardless of worker count.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cells = list(cells)
    if workers == 1 or len(cells) <= 1:
        return [run_cell(c) for c in cells]
    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        return list(pool.map(run_cell, cells))


def product_grid(
    apps: Iterable[str],
    policies: Iterable[str],
    slas: Iterable[float] = (2.0,),
    seeds: Iterable[int] = (3,),
    *,
    preset: str = "steady",
    duration: float = 600.0,
    train_duration: float = 3600.0,
    env_seed: int = 0,
) -> list[CellSpec]:
    """The (app × sla × policy × seed) cell product, in deterministic order.

    Thin wrapper over the :class:`~repro.experiments.scenario.ScenarioSpec`
    compiler — the one place cell products are built.
    """
    from repro.experiments.scenario import ScenarioSpec

    return ScenarioSpec(
        apps=tuple(apps),
        policies=tuple(policies),
        slas=tuple(slas),
        seeds=tuple(seeds),
        presets=(preset,),
        duration=duration,
        train_duration=train_duration,
        env_seed=env_seed,
    ).cells()

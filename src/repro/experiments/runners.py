"""Experiment runners: environments, comparisons, sweeps, co-runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dag import amber_alert, image_query, voice_assistant
from repro.dag.graph import AppDAG
from repro.experiments.parallel import CellSpec, EnvSpec, run_grid
from repro.policies import (
    AquatopePolicy,
    GrandSLAmPolicy,
    IceBreakerPolicy,
    OptimalPolicy,
    OrionPolicy,
    SMIlessHomoPolicy,
    SMIlessNoDagPolicy,
    SMIlessPolicy,
)
from repro.profiler import OfflineProfiler, oracle_profile
from repro.simulator import Deployment, MultiAppSimulator, RunMetrics, ServerlessSimulator
from repro.workload import AzureLikeWorkload, Trace

APP_BUILDERS = {
    "amber-alert": amber_alert,
    "image-query": image_query,
    "voice-assistant": voice_assistant,
}

POLICY_NAMES = (
    "smiless",
    "orion",
    "icebreaker",
    "grandslam",
    "aquatope",
    "opt",
    "smiless-no-dag",
    "smiless-homo",
)


@dataclass
class Environment:
    """A profiled application plus its training history and eval trace."""

    app: AppDAG
    profiles: dict
    oracle: dict
    train_counts: np.ndarray
    trace: Trace
    # Picklable recipe this environment was built from; lets parallel
    # runners rebuild it inside worker processes.  ``None`` for hand-rolled
    # environments, which then fall back to serial execution.
    spec: EnvSpec | None = None

    def make_policy(self, name: str):
        """Instantiate a policy by registry name."""
        if name == "smiless":
            return SMIlessPolicy(self.profiles, train_counts=self.train_counts)
        if name == "smiless-no-dag":
            return SMIlessNoDagPolicy(self.profiles, train_counts=self.train_counts)
        if name == "smiless-homo":
            return SMIlessHomoPolicy(self.profiles, train_counts=self.train_counts)
        if name == "orion":
            return OrionPolicy(self.profiles)
        if name == "icebreaker":
            return IceBreakerPolicy(self.profiles, train_counts=self.train_counts)
        if name == "grandslam":
            return GrandSLAmPolicy(self.profiles)
        if name == "aquatope":
            return AquatopePolicy(self.profiles)
        if name == "opt":
            return OptimalPolicy(self.oracle, self.trace)
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(POLICY_NAMES)}"
        )


def build_environment(
    app_name: str,
    *,
    preset: str = "steady",
    sla: float = 2.0,
    duration: float = 600.0,
    train_duration: float = 3600.0,
    seed: int = 0,
) -> Environment:
    """Profile an evaluation app and synthesize its workload."""
    try:
        app = APP_BUILDERS[app_name](sla=sla)
    except KeyError:
        raise KeyError(
            f"unknown application {app_name!r}; "
            f"available: {', '.join(APP_BUILDERS)}"
        ) from None
    profiles = OfflineProfiler().profile_app(app, rng=seed)
    oracle = {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}
    train = AzureLikeWorkload.preset(preset, seed=seed).generate(train_duration)
    trace = AzureLikeWorkload.preset(preset, seed=seed + 1000).generate(duration)
    return Environment(
        app=app,
        profiles=profiles,
        oracle=oracle,
        train_counts=train.counts_per_window(1.0),
        trace=trace,
        spec=EnvSpec(
            app=app_name,
            preset=preset,
            sla=sla,
            duration=duration,
            train_duration=train_duration,
            seed=seed,
        ),
    )


@dataclass(frozen=True)
class ComparisonRow:
    """One policy's outcome in a comparison run."""

    policy: str
    total_cost: float
    violation_ratio: float
    mean_latency: float
    p99_latency: float
    reinit_fraction: float

    @classmethod
    def from_metrics(cls, policy: str, m: RunMetrics) -> "ComparisonRow":
        return cls.from_summary(policy, m.summary())

    @classmethod
    def from_summary(cls, policy: str, s: dict) -> "ComparisonRow":
        return cls(
            policy=policy,
            total_cost=s["total_cost"],
            violation_ratio=s["violation_ratio"],
            mean_latency=s["mean_latency"],
            p99_latency=s["p99_latency"],
            reinit_fraction=s["reinit_fraction"],
        )


def run_comparison(
    env: Environment,
    policies: tuple[str, ...] = ("smiless", "orion", "icebreaker", "grandslam"),
    *,
    seed: int = 3,
    workers: int = 1,
) -> list[ComparisonRow]:
    """Serve the environment's trace under each policy.

    With ``workers > 1`` (and an environment that carries its build spec),
    policies run in parallel worker processes; summaries are identical to a
    serial run.
    """
    if workers > 1 and env.spec is not None:
        cells = [
            CellSpec(env=env.spec, policy=name, sim_seed=seed)
            for name in policies
        ]
        return [
            ComparisonRow.from_summary(res.spec.policy, res.summary)
            for res in run_grid(cells, workers=workers)
        ]
    rows = []
    for name in policies:
        metrics = ServerlessSimulator(
            env.app, env.trace, env.make_policy(name), seed=seed
        ).run()
        rows.append(ComparisonRow.from_metrics(name, metrics))
    return rows


def run_sla_sweep(
    env: Environment,
    slas: tuple[float, ...],
    policy: str = "smiless",
    *,
    seed: int = 3,
    workers: int = 1,
) -> list[tuple[float, ComparisonRow]]:
    """Re-serve the trace at each SLA target under one policy.

    With ``workers > 1`` the SLA points run in parallel worker processes.
    """
    if workers > 1 and env.spec is not None:
        cells = [
            CellSpec(
                env=EnvSpec(
                    app=env.spec.app,
                    preset=env.spec.preset,
                    sla=sla,
                    duration=env.spec.duration,
                    train_duration=env.spec.train_duration,
                    seed=env.spec.seed,
                ),
                policy=policy,
                sim_seed=seed,
            )
            for sla in slas
        ]
        return [
            (sla, ComparisonRow.from_summary(policy, res.summary))
            for sla, res in zip(slas, run_grid(cells, workers=workers))
        ]
    out = []
    for sla in slas:
        app = env.app.with_sla(sla)
        tuned = Environment(
            app=app,
            profiles=env.profiles,
            oracle=env.oracle,
            train_counts=env.train_counts,
            trace=env.trace,
        )
        metrics = ServerlessSimulator(
            app, env.trace, tuned.make_policy(policy), seed=seed
        ).run()
        out.append((sla, ComparisonRow.from_metrics(policy, metrics)))
    return out


def run_multi_app(
    envs: list[Environment],
    policy: str = "smiless",
    *,
    seed: int = 3,
) -> dict[str, ComparisonRow]:
    """Co-run several environments on one shared cluster (§VII-A)."""
    deployments = [
        Deployment(env.app, env.trace, env.make_policy(policy)) for env in envs
    ]
    results = MultiAppSimulator(deployments, seed=seed).run()
    return {
        name: ComparisonRow.from_metrics(policy, metrics)
        for name, metrics in results.items()
    }

"""Experiment runners: environments, comparisons, sweeps, co-runs.

Every runner compiles its axes through the
:class:`~repro.experiments.scenario.ScenarioSpec` compiler and executes
through :func:`~repro.experiments.parallel.run_grid` — serial execution is
``workers=1`` on the same path, not a separate branch.  Hand-rolled
environments (``env.spec is None``) cannot be rebuilt inside worker
processes; those fall back to direct in-process execution and *warn* when
``workers > 1`` was requested.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.plan import FaultPlan
    from repro.overload.spec import OverloadSpec

from repro.dag import (
    amber_alert,
    image_query,
    image_query_swap,
    llm_chat,
    voice_assistant,
)
from repro.dag.graph import AppDAG
from repro.experiments.parallel import (
    CellSpec,
    EnvSpec,
    MultiAppCellSpec,
    run_grid,
)
from repro.experiments.scenario import ScenarioSpec
from repro.policies import make_policy as registry_make_policy
from repro.policies import policy_names
from repro.policies.smiless import pretrain_predictors
from repro.profiler import OfflineProfiler, oracle_profile
from repro.simulator import (
    Deployment,
    MultiAppSimulator,
    RunMetrics,
    ServerlessSimulator,
)
from repro.workload import AzureLikeWorkload, AzureTraceWorkload, Trace

APP_BUILDERS = {
    "amber-alert": amber_alert,
    "image-query": image_query,
    "voice-assistant": voice_assistant,
    # Beyond-paper archetypes (see docs/paper_mapping.md): token-driven
    # LLM serving and GPU model swapping.
    "llm-chat": llm_chat,
    "image-query-swap": image_query_swap,
}

#: All registered policy names (see :mod:`repro.policies.registry`).
POLICY_NAMES = policy_names()


def _warn_serial_fallback(what: str, workers: int) -> None:
    warnings.warn(
        f"{what} carries no build spec (env.spec is None), so it cannot be "
        f"rebuilt in worker processes; ignoring workers={workers} and "
        "running serially in-process. Build environments with "
        "build_environment() to enable parallel execution.",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass
class Environment:
    """A profiled application plus its training history and eval trace."""

    app: AppDAG
    profiles: dict
    oracle: dict
    train_counts: np.ndarray
    trace: Trace
    # Picklable recipe this environment was built from; lets parallel
    # runners rebuild it inside worker processes.  ``None`` for hand-rolled
    # environments, which then fall back to serial execution.
    spec: EnvSpec | None = None

    def make_policy(self, name: str):
        """Instantiate a policy by registry name (see ``repro.policies.registry``)."""
        return registry_make_policy(name, self)


def build_environment(
    app_name: str,
    *,
    preset: str = "steady",
    sla: float = 2.0,
    duration: float = 600.0,
    train_duration: float = 3600.0,
    seed: int = 0,
    azure_trace: str | None = None,
) -> Environment:
    """Profile an evaluation app and synthesize its workload.

    ``azure_trace`` replays the published Azure Functions CSV at ``PATH``
    as the *evaluation* trace (``repro scenario --azure-trace``); training
    history stays synthetic (the dataset is one day — replaying it for
    both would leak the eval arrivals into predictor training).
    """
    try:
        app = APP_BUILDERS[app_name](sla=sla)
    except KeyError:
        raise KeyError(
            f"unknown application {app_name!r}; "
            f"available: {', '.join(APP_BUILDERS)}"
        ) from None
    profiles = OfflineProfiler().profile_app(app, rng=seed)
    oracle = {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}
    train = AzureLikeWorkload.preset(preset, seed=seed).generate(train_duration)
    if azure_trace is not None:
        trace = AzureTraceWorkload(azure_trace).generate(
            duration, seed=seed + 1000
        )
    else:
        trace = AzureLikeWorkload.preset(preset, seed=seed + 1000).generate(
            duration
        )
    train_counts = train.counts_per_window(1.0)
    # Predictor training is deterministic offline preparation, like
    # profiling: warm the shared predictor cache here so policy
    # construction inside (timed) simulation runs is a cache hit.
    pretrain_predictors(train_counts)
    return Environment(
        app=app,
        profiles=profiles,
        oracle=oracle,
        train_counts=train_counts,
        trace=trace,
        spec=EnvSpec(
            app=app_name,
            preset=preset,
            sla=sla,
            duration=duration,
            train_duration=train_duration,
            seed=seed,
            azure_trace=azure_trace,
        ),
    )


@dataclass(frozen=True)
class ComparisonRow:
    """One policy's outcome in a comparison run."""

    policy: str
    total_cost: float
    violation_ratio: float
    mean_latency: float
    p99_latency: float
    reinit_fraction: float

    @classmethod
    def from_metrics(cls, policy: str, m: RunMetrics) -> "ComparisonRow":
        return cls.from_summary(policy, m.summary())

    @classmethod
    def from_summary(cls, policy: str, s: dict) -> "ComparisonRow":
        return cls(
            policy=policy,
            total_cost=s["total_cost"],
            violation_ratio=s["violation_ratio"],
            mean_latency=s["mean_latency"],
            p99_latency=s["p99_latency"],
            reinit_fraction=s["reinit_fraction"],
        )


def run_comparison(
    env: Environment,
    policies: tuple[str, ...] = ("smiless", "orion", "icebreaker", "grandslam"),
    *,
    seed: int = 3,
    workers: int = 1,
    init_failure_rate: float = 0.0,
    faults: "FaultPlan | None" = None,
    overload: "OverloadSpec | None" = None,
    retention: str = "full",
) -> list[ComparisonRow]:
    """Serve the environment's trace under each policy.

    Compiles to grid cells through the scenario compiler and runs through
    :func:`run_grid` — with ``workers > 1`` policies fan across worker
    processes, and summaries are identical to a serial run.
    ``init_failure_rate`` / ``faults`` inject the same failure regime into
    every policy's run, making chaos comparisons apples-to-apples.
    """
    if env.spec is None:
        if workers > 1:
            _warn_serial_fallback("run_comparison environment", workers)
        return [
            ComparisonRow.from_metrics(
                name,
                ServerlessSimulator(
                    env.app,
                    env.trace,
                    env.make_policy(name),
                    seed=seed,
                    init_failure_rate=init_failure_rate,
                    faults=faults,
                    overload=overload,
                    retention=retention,
                ).run(),
            )
            for name in policies
        ]
    scenario = ScenarioSpec.for_environment(
        env.spec,
        policies=tuple(policies),
        seeds=(seed,),
        init_failure_rate=init_failure_rate,
        faults=faults,
        overload=overload,
        retention=retention,
    )
    return [
        ComparisonRow.from_summary(res.spec.policy, res.summary)
        for res in run_grid(scenario.cells(), workers=workers)
    ]


def run_sla_sweep(
    env: Environment,
    slas: tuple[float, ...],
    policy: str = "smiless",
    *,
    seed: int = 3,
    workers: int = 1,
    init_failure_rate: float = 0.0,
    faults: "FaultPlan | None" = None,
    overload: "OverloadSpec | None" = None,
    retention: str = "full",
) -> list[tuple[float, ComparisonRow]]:
    """Re-serve the trace at each SLA target under one policy.

    With ``workers > 1`` the SLA points run in parallel worker processes,
    through the same grid path a serial run uses.
    """
    if env.spec is None:
        if workers > 1:
            _warn_serial_fallback("run_sla_sweep environment", workers)
        out = []
        for sla in slas:
            app = env.app.with_sla(sla)
            tuned = Environment(
                app=app,
                profiles=env.profiles,
                oracle=env.oracle,
                train_counts=env.train_counts,
                trace=env.trace,
            )
            metrics = ServerlessSimulator(
                app,
                env.trace,
                tuned.make_policy(policy),
                seed=seed,
                init_failure_rate=init_failure_rate,
                faults=faults,
                overload=overload,
                retention=retention,
            ).run()
            out.append((sla, ComparisonRow.from_metrics(policy, metrics)))
        return out
    scenario = ScenarioSpec.for_environment(
        env.spec,
        policies=(policy,),
        slas=tuple(slas),
        seeds=(seed,),
        init_failure_rate=init_failure_rate,
        faults=faults,
        overload=overload,
        retention=retention,
    )
    return [
        (sla, ComparisonRow.from_summary(policy, res.summary))
        for sla, res in zip(slas, run_grid(scenario.cells(), workers=workers))
    ]


def run_multi_app(
    envs: list[Environment],
    policies: str | tuple[str, ...] = "smiless",
    *,
    seed: int = 3,
    workers: int = 1,
    seeding: str = "name",
    init_failure_rate: float = 0.0,
    faults: "FaultPlan | None" = None,
    overload: "OverloadSpec | None" = None,
    retention: str = "full",
) -> dict[str, ComparisonRow] | dict[str, dict[str, ComparisonRow]]:
    """Co-run several environments on one shared cluster (§VII-A).

    With a single policy name the return value is ``{app: row}``; with a
    tuple of policies it is ``{policy: {app: row}}`` and ``workers > 1``
    fans one co-run cell per policy across worker processes (through the
    same :func:`run_grid` path as serial execution).
    """
    if not envs:
        raise ValueError("need at least one environment")
    single = isinstance(policies, str)
    names = (policies,) if single else tuple(policies)
    specs = [env.spec for env in envs]
    if any(spec is None for spec in specs):
        if workers > 1:
            _warn_serial_fallback("run_multi_app environment", workers)
        results = {}
        for name in names:
            deployments = [
                Deployment(env.app, env.trace, env.make_policy(name))
                for env in envs
            ]
            metrics = MultiAppSimulator(
                deployments,
                seed=seed,
                seeding=seeding,
                init_failure_rate=init_failure_rate,
                faults=faults,
                overload=overload,
                retention=retention,
            ).run()
            results[name] = {
                app: ComparisonRow.from_metrics(name, m)
                for app, m in metrics.items()
            }
    else:
        cells = [
            MultiAppCellSpec(
                envs=tuple(specs),
                policy=name,
                sim_seed=seed,
                seeding=seeding,
                init_failure_rate=init_failure_rate,
                faults=faults,
                overload=overload,
                retention=retention,
            )
            for name in names
        ]
        results = {
            res.spec.policy: {
                app: ComparisonRow.from_summary(res.spec.policy, summary)
                for app, summary in res.summary.items()
            }
            for res in run_grid(cells, workers=workers)
        }
    return results[names[0]] if single else results


@dataclass(frozen=True)
class ScenarioRow:
    """One (app, policy) outcome of a scenario cell, with its coordinates."""

    app: str
    preset: str
    sla: float
    env_seed: int
    sim_seed: int
    policy: str
    row: ComparisonRow


def run_scenario(
    scenario: ScenarioSpec, *, workers: int = 1
) -> list[ScenarioRow]:
    """Compile and run a scenario end-to-end; one row per (app, policy) cell.

    Co-run cells expand to one row per co-resident app so the output shape
    is uniform across solo and multi-tenant scenarios.
    """
    rows: list[ScenarioRow] = []
    for res in run_grid(scenario.cells(), workers=workers):
        if isinstance(res.spec, MultiAppCellSpec):
            by_app = {e.app: e for e in res.spec.envs}
            for app_name, summary in res.summary.items():
                env = by_app[app_name]
                rows.append(
                    ScenarioRow(
                        app=app_name,
                        preset=env.preset,
                        sla=env.sla,
                        env_seed=env.seed,
                        sim_seed=res.spec.sim_seed,
                        policy=res.spec.policy,
                        row=ComparisonRow.from_summary(
                            res.spec.policy, summary
                        ),
                    )
                )
        else:
            env = res.spec.env
            rows.append(
                ScenarioRow(
                    app=env.app,
                    preset=env.preset,
                    sla=env.sla,
                    env_seed=env.seed,
                    sim_seed=res.spec.sim_seed,
                    policy=res.spec.policy,
                    row=ComparisonRow.from_summary(res.spec.policy, res.summary),
                )
            )
    return rows

"""Reusable experiment runners (the programmatic layer behind the CLI).

These wrap the common evaluation shapes — policy comparisons, SLA sweeps,
burst studies, multi-application co-runs — into functions that return plain
result rows, so notebooks, the CLI and ad-hoc scripts share one
implementation with the benchmark suite's semantics.
"""

from repro.experiments.parallel import (
    CellResult,
    CellSpec,
    EnvSpec,
    product_grid,
    run_grid,
)
from repro.experiments.runners import (
    ComparisonRow,
    build_environment,
    run_comparison,
    run_multi_app,
    run_sla_sweep,
)

__all__ = [
    "ComparisonRow",
    "EnvSpec",
    "CellSpec",
    "CellResult",
    "build_environment",
    "product_grid",
    "run_grid",
    "run_comparison",
    "run_sla_sweep",
    "run_multi_app",
]

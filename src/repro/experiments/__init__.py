"""Reusable experiment runners (the programmatic layer behind the CLI).

These wrap the common evaluation shapes — policy comparisons, SLA sweeps,
burst studies, multi-application co-runs, declarative scenarios — into
functions that return plain result rows, so notebooks, the CLI and ad-hoc
scripts share one implementation with the benchmark suite's semantics.
All runners compile their axes through
:class:`~repro.experiments.scenario.ScenarioSpec` and execute through the
single :func:`~repro.experiments.parallel.run_grid` path.
"""

from repro.experiments.packs import (
    PACK_NAMES,
    PackCheck,
    PackReport,
    pack_spec,
    run_pack,
)
from repro.experiments.parallel import (
    CellResult,
    CellSpec,
    EnvSpec,
    MultiAppCellSpec,
    product_grid,
    run_grid,
)
from repro.experiments.runners import (
    ComparisonRow,
    ScenarioRow,
    build_environment,
    run_comparison,
    run_multi_app,
    run_scenario,
    run_sla_sweep,
)
from repro.experiments.scenario import ScenarioSpec

__all__ = [
    "ComparisonRow",
    "PACK_NAMES",
    "PackCheck",
    "PackReport",
    "ScenarioRow",
    "ScenarioSpec",
    "EnvSpec",
    "CellSpec",
    "MultiAppCellSpec",
    "CellResult",
    "build_environment",
    "pack_spec",
    "product_grid",
    "run_grid",
    "run_comparison",
    "run_pack",
    "run_sla_sweep",
    "run_multi_app",
    "run_scenario",
]

"""Declarative scenario specs: (apps × policies × SLAs × presets × seeds).

A :class:`ScenarioSpec` is a picklable, JSON-loadable description of a
figure-style experiment.  Its :meth:`~ScenarioSpec.cells` compiler is the
*single* place that turns experiment axes into grid cells
(:class:`~repro.experiments.parallel.CellSpec` for solo runs,
:class:`~repro.experiments.parallel.MultiAppCellSpec` for co-runs), so
``run_comparison``, ``run_sla_sweep``, ``run_multi_app`` and the
``repro scenario`` CLI all flow through one
:func:`~repro.experiments.parallel.run_grid` execution path — serial is
``workers=1``, not a separate code branch.

Example (JSON accepted by ``python -m repro.cli scenario spec.json``)::

    {
      "apps": ["image-query", "amber-alert"],
      "policies": ["smiless", "grandslam"],
      "slas": [1.0, 2.0, 4.0],
      "presets": ["steady"],
      "seeds": [3],
      "duration": 300.0
    }

With ``"co_run": true`` the listed applications share one cluster per
cell (the paper's §VII-A setting) instead of running solo.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.experiments.parallel import CellSpec, EnvSpec, MultiAppCellSpec
from repro.faults.plan import FaultPlan
from repro.overload.spec import OverloadSpec

__all__ = ["ScenarioSpec"]


def _tuple(value: Any) -> tuple:
    """Normalize a JSON scalar-or-list axis to a tuple."""
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment scenario: the cross product of its axes."""

    apps: tuple[str, ...]
    policies: tuple[str, ...]
    slas: tuple[float, ...] = (2.0,)
    presets: tuple[str, ...] = ("steady",)
    seeds: tuple[int, ...] = (3,)
    duration: float = 600.0
    train_duration: float = 3600.0
    env_seed: int = 0
    #: Co-run all ``apps`` on one shared cluster per cell (§VII-A) instead
    #: of simulating each app solo.
    co_run: bool = False
    #: Per-app seeding for co-run cells: "name" (order-independent) or
    #: "legacy" (positional, pre-refactor compatible).
    seeding: str = "name"
    #: Opt every cell into telemetry: each run is recorded and its event
    #: stream written as JSONL into this directory (one file per cell).
    #: ``None`` (default) records nothing.
    trace_dir: str | None = None
    #: Per-warmup initialization-failure probability injected into every
    #: cell (0.0 — the default — injects nothing).
    init_failure_rate: float = 0.0
    #: Fault plan attached to every cell: machine outages, execution
    #: faults, latency stragglers, init-failure bursts and the resilience
    #: knobs absorbing them.  In JSON form this key accepts an inline
    #: fault-plan object or a path string to a plan file.
    faults: FaultPlan | None = None
    #: Overload spec attached to every cell: bounded queues with shedding,
    #: token-bucket admission control, circuit breakers and brownout
    #: degradation (see :mod:`repro.overload`).  In JSON form this key
    #: accepts an inline spec object or a path string to a spec file.
    overload: OverloadSpec | None = None
    #: Record retention for every cell: "full" keeps every invocation and
    #: billing record (exact, memory grows with the trace), "sketch" folds
    #: completions into streaming accumulators (O(1) memory; latency
    #: distributions approximate within a documented rank-error bound).
    retention: str = "full"
    #: Shard plane (:mod:`repro.sharding`): fan every cell's (app ×
    #: trace-slice) units over this many worker processes and merge at the
    #: barrier.  ``shards > 1`` or ``slices_per_app > 1`` requires
    #: ``retention="sketch"`` and no ``trace_dir``; merged
    #: non-distributional metrics are independent of the shard count.
    shards: int = 1
    #: Trace slices per app in sharded cells.  Part of the experiment
    #: definition (it changes which simulations run), unlike ``shards``.
    slices_per_app: int = 1
    #: Replay the published Azure Functions CSV at this path as every
    #: cell's evaluation trace (``repro scenario --azure-trace PATH``);
    #: ``None`` keeps the synthetic preset generator.
    azure_trace: str | None = None

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("scenario needs at least one app")
        if not self.policies:
            raise ValueError("scenario needs at least one policy")
        for axis in ("slas", "presets", "seeds"):
            if not getattr(self, axis):
                raise ValueError(f"scenario axis {axis!r} must be non-empty")
        from repro.simulator.metrics import RETENTION_MODES

        if self.retention not in RETENTION_MODES:
            raise ValueError(
                f"unknown retention mode {self.retention!r}; "
                f"expected one of {RETENTION_MODES}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.slices_per_app < 1:
            raise ValueError(
                f"slices_per_app must be >= 1, got {self.slices_per_app}"
            )
        if (self.shards > 1 or self.slices_per_app > 1) and (
            self.retention != "sketch"
        ):
            raise ValueError(
                "sharded scenarios require retention='sketch' "
                "(shard snapshots extract streaming state); got "
                f"retention={self.retention!r}"
            )
        if (self.shards > 1 or self.slices_per_app > 1) and (
            self.trace_dir is not None
        ):
            raise ValueError(
                "sharded scenarios cannot record telemetry traces: each "
                "unit runs as its own runtime (drop trace_dir or sharding)"
            )

    # ------------------------------------------------------------- loading
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from a plain dict (e.g. parsed JSON).

        Scalar axis values are promoted to one-element tuples; unknown
        keys are rejected with the list of valid ones.
        """
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise KeyError(
                f"unknown scenario keys {sorted(unknown)}; "
                f"valid keys: {sorted(valid)}"
            )
        kwargs: dict[str, Any] = dict(data)
        for axis in ("apps", "policies", "slas", "presets", "seeds"):
            if axis in kwargs:
                kwargs[axis] = _tuple(kwargs[axis])
        faults = kwargs.get("faults")
        if isinstance(faults, Mapping):
            kwargs["faults"] = FaultPlan.from_dict(faults)
        elif isinstance(faults, str):
            kwargs["faults"] = FaultPlan.from_json(faults)
        overload = kwargs.get("overload")
        if isinstance(overload, Mapping):
            kwargs["overload"] = OverloadSpec.from_dict(overload)
        elif isinstance(overload, str):
            kwargs["overload"] = OverloadSpec.from_json(overload)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, path: str | Path) -> "ScenarioSpec":
        """Load a spec from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def for_environment(
        cls,
        env: EnvSpec,
        *,
        policies: Sequence[str],
        slas: Sequence[float] | None = None,
        seeds: Sequence[int] = (3,),
        init_failure_rate: float = 0.0,
        faults: FaultPlan | None = None,
        overload: OverloadSpec | None = None,
        retention: str = "full",
    ) -> "ScenarioSpec":
        """Scenario over one already-specified environment recipe.

        The canonical way runners re-expand a built environment into grid
        cells: every axis not overridden is pinned to the environment's
        own values.
        """
        return cls(
            apps=(env.app,),
            policies=tuple(policies),
            slas=tuple(slas) if slas is not None else (env.sla,),
            presets=(env.preset,),
            seeds=tuple(seeds),
            duration=env.duration,
            train_duration=env.train_duration,
            env_seed=env.seed,
            init_failure_rate=init_failure_rate,
            faults=faults,
            overload=overload,
            retention=retention,
            azure_trace=env.azure_trace,
        )

    def to_dict(self) -> dict[str, Any]:
        """Round-trippable plain-dict form (JSON-serializable)."""
        return asdict(self)

    # ------------------------------------------------------------ compiling
    def cells(self) -> list[CellSpec | MultiAppCellSpec]:
        """Compile the scenario to grid cells, in deterministic order.

        Solo scenarios produce one :class:`CellSpec` per
        (preset × app × sla × policy × seed); co-run scenarios produce one
        :class:`MultiAppCellSpec` per (preset × sla × policy × seed) with
        every app deployed together.
        """
        if self.co_run:
            return [
                MultiAppCellSpec(
                    envs=tuple(
                        self._env_spec(app, preset, sla) for app in self.apps
                    ),
                    policy=policy,
                    sim_seed=seed,
                    seeding=self.seeding,
                    trace_dir=self.trace_dir,
                    init_failure_rate=self.init_failure_rate,
                    faults=self.faults,
                    overload=self.overload,
                    retention=self.retention,
                    shards=self.shards,
                    slices_per_app=self.slices_per_app,
                )
                for preset in self.presets
                for sla in self.slas
                for policy in self.policies
                for seed in self.seeds
            ]
        return [
            CellSpec(
                env=self._env_spec(app, preset, sla),
                policy=policy,
                sim_seed=seed,
                trace_dir=self.trace_dir,
                init_failure_rate=self.init_failure_rate,
                faults=self.faults,
                overload=self.overload,
                retention=self.retention,
                shards=self.shards,
                slices_per_app=self.slices_per_app,
            )
            for preset in self.presets
            for app in self.apps
            for sla in self.slas
            for policy in self.policies
            for seed in self.seeds
        ]

    def serve_cell(self) -> MultiAppCellSpec:
        """Compile to the single co-run cell a live serving session hosts.

        ``repro serve --scenario`` turns a scenario into *one* live
        multi-tenant runtime (every app co-deployed, as in a real
        deployment), so each experiment axis must be pinned to exactly
        one value.  ``co_run`` is irrelevant here — serving always
        co-hosts.  Fault plans, sharding and telemetry tracing are not
        supported by the live path and are rejected up front.
        """
        for axis in ("policies", "slas", "presets", "seeds"):
            values = getattr(self, axis)
            if len(values) != 1:
                raise ValueError(
                    f"live serving needs exactly one value on the {axis!r} "
                    f"axis, got {values!r}"
                )
        if self.faults is not None:
            raise ValueError("live serving does not support fault plans yet")
        if self.shards != 1 or self.slices_per_app != 1:
            raise ValueError("live serving does not support sharding")
        if self.trace_dir is not None:
            raise ValueError(
                "live serving does not record telemetry traces "
                "(it writes a request log instead)"
            )
        return MultiAppCellSpec(
            envs=tuple(
                self._env_spec(app, self.presets[0], self.slas[0])
                for app in self.apps
            ),
            policy=self.policies[0],
            sim_seed=self.seeds[0],
            seeding=self.seeding,
            init_failure_rate=self.init_failure_rate,
            overload=self.overload,
            retention=self.retention,
        )

    def _env_spec(self, app: str, preset: str, sla: float) -> EnvSpec:
        return EnvSpec(
            app=app,
            preset=preset,
            sla=sla,
            duration=self.duration,
            train_duration=self.train_duration,
            seed=self.env_seed,
            azure_trace=self.azure_trace,
        )

"""Curated scenario packs: beyond-paper regimes with built-in validation.

A *pack* is a named, pre-baked :class:`~repro.experiments.scenario.ScenarioSpec`
plus the invariant checks that make its results trustworthy without manual
inspection.  Two packs ship with the repo (``repro scenario --preset NAME``):

``llm``
    The token-driven LLM archetype (``llm-chat``) under every registered
    policy.  Service times are work-dependent (per-invocation prompt and
    generation lengths), the regime the paper's fixed-latency model cannot
    express.

``gpu-swap``
    The swap-capable GPU regime: ``image-query-swap`` (host↔GPU model
    paging) side by side with its no-swap twin ``image-query`` under every
    registered policy, isolating what swapping buys.

Every pack validates the conservation identity on each cell —
``arrivals == completed + unfinished + timed_out``, with arrivals taken
from the *trace*, not re-derived from the metrics — and the ``gpu-swap``
pack additionally requires swap-in activity and a strict cold-start
reduction versus the no-swap baseline for every policy that swapped.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.experiments.parallel import CellResult, run_grid
from repro.experiments.runners import ComparisonRow, ScenarioRow
from repro.experiments.scenario import ScenarioSpec
from repro.policies import policy_names

__all__ = [
    "PACK_NAMES",
    "PackCheck",
    "PackReport",
    "pack_spec",
    "run_pack",
]

#: Pack runs are meant to finish in minutes on a laptop: a short horizon,
#: a modest training history, every policy in the registry.
PACK_DURATION = 180.0
PACK_TRAIN_DURATION = 1200.0


def _llm_spec() -> ScenarioSpec:
    return ScenarioSpec(
        apps=("llm-chat",),
        policies=tuple(policy_names()),
        slas=(6.0,),
        presets=("steady",),
        seeds=(3,),
        duration=PACK_DURATION,
        train_duration=PACK_TRAIN_DURATION,
    )


def _gpu_swap_spec() -> ScenarioSpec:
    # The swap app first: its rows lead the report, and the baseline twin
    # follows at the same coordinates for a cell-by-cell comparison.
    # Bursty arrivals under a tight SLA are the regime where swapping
    # matters: GPU placements churn (instances expire between bursts and
    # cold-launch again), so a host-resident model gets re-used instead of
    # re-initialized.  Under steady load policies either keep their GPU
    # instances warm forever or stay on CPU, and no swap ever fires.
    return ScenarioSpec(
        apps=("image-query-swap", "image-query"),
        policies=tuple(policy_names()),
        slas=(1.0,),
        presets=("bursty",),
        seeds=(3,),
        duration=PACK_DURATION,
        train_duration=PACK_TRAIN_DURATION,
    )


_PACK_BUILDERS: dict[str, Callable[[], ScenarioSpec]] = {
    "llm": _llm_spec,
    "gpu-swap": _gpu_swap_spec,
}

#: Names accepted by ``repro scenario --preset``.
PACK_NAMES = tuple(_PACK_BUILDERS)


def pack_spec(name: str, *, azure_trace: str | None = None) -> ScenarioSpec:
    """The scenario spec behind a named pack (optionally on an Azure trace)."""
    try:
        spec = _PACK_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario pack {name!r}; available: {', '.join(PACK_NAMES)}"
        ) from None
    if azure_trace is not None:
        spec = dataclasses.replace(spec, azure_trace=azure_trace)
    return spec


@dataclass(frozen=True)
class PackCheck:
    """One validated invariant of a pack run."""

    name: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class PackReport:
    """Everything a pack run produced: spec, cell results, invariant checks."""

    pack: str
    spec: ScenarioSpec
    results: list[CellResult]
    checks: list[PackCheck]

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def rows(self) -> list[ScenarioRow]:
        """Scenario-shaped rows (pack cells are always solo ``CellSpec``s)."""
        return [
            ScenarioRow(
                app=res.spec.env.app,
                preset=res.spec.env.preset,
                sla=res.spec.env.sla,
                env_seed=res.spec.env.seed,
                sim_seed=res.spec.sim_seed,
                policy=res.spec.policy,
                row=ComparisonRow.from_summary(res.spec.policy, res.summary),
            )
            for res in self.results
        ]


def _cell_label(res: CellResult) -> str:
    return f"{res.spec.env.app}/{res.spec.policy}"


def _conservation_check(results: list[CellResult]) -> PackCheck:
    bad = []
    for res in results:
        x = res.extras
        accounted = x["completed"] + x["unfinished"] + x["timed_out"]
        if x["arrivals"] != accounted:
            bad.append(
                f"{_cell_label(res)}: {x['arrivals']} arrivals vs "
                f"{accounted} accounted"
            )
    detail = (
        f"all {len(results)} cells conserve invocations"
        if not bad
        else "; ".join(bad)
    )
    return PackCheck(name="conservation", passed=not bad, detail=detail)


def _progress_check(results: list[CellResult]) -> PackCheck:
    stalled = [
        _cell_label(res) for res in results if res.extras["completed"] == 0
    ]
    detail = (
        "every cell completed invocations"
        if not stalled
        else f"no completions in: {', '.join(stalled)}"
    )
    return PackCheck(name="progress", passed=not stalled, detail=detail)


def _swap_checks(results: list[CellResult]) -> list[PackCheck]:
    """Swap-regime invariants: activity, and cold-start reduction vs twin.

    An instance launch is a *cold start* when it pays the full
    initialization; a swap-in replaces that with host→GPU paging, so the
    swap app's cold-start count is ``initializations - swap_ins``.  The
    reduction check is per policy and only binds where the policy actually
    swapped (CPU-only placements never touch the residency cache).
    """
    by_policy: dict[str, dict[str, CellResult]] = {}
    for res in results:
        by_policy.setdefault(res.spec.policy, {})[res.spec.env.app] = res
    total_swaps = 0
    regressions = []
    compared = 0
    for policy, cells in sorted(by_policy.items()):
        swap = cells.get("image-query-swap")
        base = cells.get("image-query")
        if swap is None or base is None:
            continue
        swap_ins = swap.extras["swap_ins"]
        total_swaps += swap_ins
        if swap_ins == 0:
            continue
        compared += 1
        cold = swap.extras["initializations"] - swap_ins
        if cold >= base.extras["initializations"]:
            regressions.append(
                f"{policy}: {cold} cold starts with swapping vs "
                f"{base.extras['initializations']} without"
            )
    checks = [
        PackCheck(
            name="swap-activity",
            passed=total_swaps > 0,
            detail=f"{total_swaps} swap-ins across all policies",
        ),
        PackCheck(
            name="cold-start-reduction",
            passed=not regressions and compared > 0,
            detail=(
                f"{compared} policies swapped; each has strictly fewer "
                "cold starts than its no-swap twin"
                if not regressions and compared > 0
                else "; ".join(regressions) or "no policy swapped"
            ),
        ),
    ]
    return checks


def run_pack(
    name: str,
    *,
    workers: int = 1,
    azure_trace: str | None = None,
) -> PackReport:
    """Run a named pack end-to-end and validate its invariants."""
    spec = pack_spec(name, azure_trace=azure_trace)
    results = run_grid(spec.cells(), workers=workers)
    checks = [_conservation_check(results), _progress_check(results)]
    if name == "gpu-swap":
        checks.extend(_swap_checks(results))
    return PackReport(pack=name, spec=spec, results=results, checks=checks)

"""Curated scenario packs: beyond-paper regimes with built-in validation.

A *pack* is a named, pre-baked :class:`~repro.experiments.scenario.ScenarioSpec`
plus the invariant checks that make its results trustworthy without manual
inspection.  Two packs ship with the repo (``repro scenario --preset NAME``):

``llm``
    The token-driven LLM archetype (``llm-chat``) under every registered
    policy.  Service times are work-dependent (per-invocation prompt and
    generation lengths), the regime the paper's fixed-latency model cannot
    express.

``gpu-swap``
    The swap-capable GPU regime: ``image-query-swap`` (host↔GPU model
    paging) side by side with its no-swap twin ``image-query`` under every
    registered policy, isolating what swapping buys.

``overload``
    A flash crowd (a 20 rps arrival spike injected mid-run through the
    fault plan) hitting ``image-query`` under every registered policy,
    with an :class:`~repro.overload.OverloadSpec` attached — bounded
    queues with deadline-aware shedding, token-bucket admission and
    brownout degradation.  Every cell runs twice: once protected and once
    as an unprotected twin (``overload=None``), isolating what shedding
    buys under the same crowd.

Every pack validates the extended conservation identity on each cell —
``arrivals + injected_arrivals == completed + unfinished + timed_out +
shed + rejected``, with arrivals taken from the *trace*, not re-derived
from the metrics (the identity reduces to the classic three-term form
when no overload spec or flash crowd is attached).  The ``gpu-swap`` pack
additionally requires swap-in activity and a strict cold-start reduction
versus the no-swap baseline for every policy that swapped; the
``overload`` pack requires bounded peak queue depth, shedding activity,
and strictly higher goodput for every policy's protected cell than its
unprotected twin.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.experiments.parallel import CellResult, run_grid
from repro.experiments.runners import ComparisonRow, ScenarioRow
from repro.experiments.scenario import ScenarioSpec
from repro.faults import FaultPlan, FlashCrowd
from repro.overload import OverloadSpec
from repro.policies import policy_names

__all__ = [
    "PACK_NAMES",
    "PackCheck",
    "PackReport",
    "pack_spec",
    "run_pack",
]

#: Pack runs are meant to finish in minutes on a laptop: a short horizon,
#: a modest training history, every policy in the registry.
PACK_DURATION = 180.0
PACK_TRAIN_DURATION = 1200.0


def _llm_spec() -> ScenarioSpec:
    return ScenarioSpec(
        apps=("llm-chat",),
        policies=tuple(policy_names()),
        slas=(6.0,),
        presets=("steady",),
        seeds=(3,),
        duration=PACK_DURATION,
        train_duration=PACK_TRAIN_DURATION,
    )


def _gpu_swap_spec() -> ScenarioSpec:
    # The swap app first: its rows lead the report, and the baseline twin
    # follows at the same coordinates for a cell-by-cell comparison.
    # Bursty arrivals under a tight SLA are the regime where swapping
    # matters: GPU placements churn (instances expire between bursts and
    # cold-launch again), so a host-resident model gets re-used instead of
    # re-initialized.  Under steady load policies either keep their GPU
    # instances warm forever or stay on CPU, and no swap ever fires.
    return ScenarioSpec(
        apps=("image-query-swap", "image-query"),
        policies=tuple(policy_names()),
        slas=(1.0,),
        presets=("bursty",),
        seeds=(3,),
        duration=PACK_DURATION,
        train_duration=PACK_TRAIN_DURATION,
    )


def _overload_spec() -> ScenarioSpec:
    # A mid-run flash crowd two orders of magnitude above the steady rate
    # (~0.2 rps): heavy enough that *no* policy can absorb it by scaling,
    # so the unprotected twin drowns in backlog and the goodput-uplift
    # check binds for every policy.  The spec engages three of the four
    # mechanisms (bounded queues + deadline-aware shedding, token-bucket
    # admission, brownout); circuit breakers are wired but stay closed —
    # no execution faults are injected here (unit tests trip them).
    return ScenarioSpec(
        apps=("image-query",),
        policies=tuple(policy_names()),
        slas=(2.0,),
        presets=("steady",),
        seeds=(3,),
        duration=PACK_DURATION,
        train_duration=PACK_TRAIN_DURATION,
        faults=FaultPlan(
            flash_crowds=(FlashCrowd(rate=100.0, start=60.0, end=90.0),)
        ),
        overload=OverloadSpec(
            queue_limit=32,
            shed_policy="deadline-aware",
            admission_rate=50.0,
            admission_burst=50.0,
            brownout_queue_delay=4.0,
            brownout_recover_delay=1.0,
        ),
    )


_PACK_BUILDERS: dict[str, Callable[[], ScenarioSpec]] = {
    "llm": _llm_spec,
    "gpu-swap": _gpu_swap_spec,
    "overload": _overload_spec,
}

#: Names accepted by ``repro scenario --preset``.
PACK_NAMES = tuple(_PACK_BUILDERS)


def pack_spec(name: str, *, azure_trace: str | None = None) -> ScenarioSpec:
    """The scenario spec behind a named pack (optionally on an Azure trace)."""
    try:
        spec = _PACK_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario pack {name!r}; available: {', '.join(PACK_NAMES)}"
        ) from None
    if azure_trace is not None:
        spec = dataclasses.replace(spec, azure_trace=azure_trace)
    return spec


@dataclass(frozen=True)
class PackCheck:
    """One validated invariant of a pack run."""

    name: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class PackReport:
    """Everything a pack run produced: spec, cell results, invariant checks."""

    pack: str
    spec: ScenarioSpec
    results: list[CellResult]
    checks: list[PackCheck]

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def rows(self) -> list[ScenarioRow]:
        """Scenario-shaped rows (pack cells are always solo ``CellSpec``s)."""
        return [
            ScenarioRow(
                app=res.spec.env.app,
                preset=res.spec.env.preset,
                sla=res.spec.env.sla,
                env_seed=res.spec.env.seed,
                sim_seed=res.spec.sim_seed,
                policy=res.spec.policy,
                row=ComparisonRow.from_summary(res.spec.policy, res.summary),
            )
            for res in self.results
        ]


def _cell_label(res: CellResult) -> str:
    return f"{res.spec.env.app}/{res.spec.policy}"


def _conservation_check(results: list[CellResult]) -> PackCheck:
    bad = []
    for res in results:
        x = res.extras
        # Extended identity: every offered invocation (trace + fault-plan
        # injections) is completed, open at the horizon, timed out, shed
        # from a bounded queue, or rejected at admission — exactly once.
        accounted = (
            x["completed"]
            + x["unfinished"]
            + x["timed_out"]
            + x["shed"]
            + x["rejected"]
        )
        offered = x["arrivals"] + x["injected_arrivals"]
        if offered != accounted:
            bad.append(
                f"{_cell_label(res)}: {offered} offered vs "
                f"{accounted} accounted"
            )
    detail = (
        f"all {len(results)} cells conserve invocations"
        if not bad
        else "; ".join(bad)
    )
    return PackCheck(name="conservation", passed=not bad, detail=detail)


def _progress_check(results: list[CellResult]) -> PackCheck:
    stalled = [
        _cell_label(res) for res in results if res.extras["completed"] == 0
    ]
    detail = (
        "every cell completed invocations"
        if not stalled
        else f"no completions in: {', '.join(stalled)}"
    )
    return PackCheck(name="progress", passed=not stalled, detail=detail)


def _swap_checks(results: list[CellResult]) -> list[PackCheck]:
    """Swap-regime invariants: activity, and cold-start reduction vs twin.

    An instance launch is a *cold start* when it pays the full
    initialization; a swap-in replaces that with host→GPU paging, so the
    swap app's cold-start count is ``initializations - swap_ins``.  The
    reduction check is per policy and only binds where the policy actually
    swapped (CPU-only placements never touch the residency cache).
    """
    by_policy: dict[str, dict[str, CellResult]] = {}
    for res in results:
        by_policy.setdefault(res.spec.policy, {})[res.spec.env.app] = res
    total_swaps = 0
    regressions = []
    compared = 0
    for policy, cells in sorted(by_policy.items()):
        swap = cells.get("image-query-swap")
        base = cells.get("image-query")
        if swap is None or base is None:
            continue
        swap_ins = swap.extras["swap_ins"]
        total_swaps += swap_ins
        if swap_ins == 0:
            continue
        compared += 1
        cold = swap.extras["initializations"] - swap_ins
        if cold >= base.extras["initializations"]:
            regressions.append(
                f"{policy}: {cold} cold starts with swapping vs "
                f"{base.extras['initializations']} without"
            )
    checks = [
        PackCheck(
            name="swap-activity",
            passed=total_swaps > 0,
            detail=f"{total_swaps} swap-ins across all policies",
        ),
        PackCheck(
            name="cold-start-reduction",
            passed=not regressions and compared > 0,
            detail=(
                f"{compared} policies swapped; each has strictly fewer "
                "cold starts than its no-swap twin"
                if not regressions and compared > 0
                else "; ".join(regressions) or "no policy swapped"
            ),
        ),
    ]
    return checks


def _overload_checks(
    spec: ScenarioSpec,
    protected: list[CellResult],
    unprotected: list[CellResult],
) -> list[PackCheck]:
    """Overload-regime invariants: bounded queues, activity, goodput uplift.

    The bound check is structural — a protected cell's deepest observed
    queue can never exceed ``queue_limit`` because admission to a full
    queue sheds first.  The uplift check is the economic one: under the
    same flash crowd, every policy's protected run must serve strictly
    more of the offered load within the SLA than its unprotected twin
    (sheds and rejections count against goodput, so the uplift is earned
    by keeping the survivors fast, not by discarding the denominator).
    """
    limit = spec.overload.queue_limit
    over = [
        f"{_cell_label(res)}: peak depth "
        f"{res.extras['peak_queue_depth']} > limit {limit}"
        for res in protected
        if res.extras["peak_queue_depth"] > limit
    ]
    total_shed = sum(
        res.extras["shed"] + res.extras["rejected"] for res in protected
    )
    by_policy: dict[str, dict[str, CellResult]] = {}
    for res in protected:
        by_policy.setdefault(res.spec.policy, {})["on"] = res
    for res in unprotected:
        by_policy.setdefault(res.spec.policy, {})["off"] = res
    regressions = []
    compared = 0
    for policy, pair in sorted(by_policy.items()):
        if "on" not in pair or "off" not in pair:
            continue
        compared += 1
        g_on = pair["on"].summary["goodput"]
        g_off = pair["off"].summary["goodput"]
        if not g_on > g_off:
            regressions.append(
                f"{policy}: goodput {g_on:.3f} with shedding vs "
                f"{g_off:.3f} without"
            )
    return [
        PackCheck(
            name="bounded-queues",
            passed=not over,
            detail=(
                f"every protected cell's peak queue depth <= {limit}"
                if not over
                else "; ".join(over)
            ),
        ),
        PackCheck(
            name="shed-activity",
            passed=total_shed > 0,
            detail=(
                f"{total_shed} invocations shed or rejected across "
                "all protected cells"
            ),
        ),
        PackCheck(
            name="goodput-uplift",
            passed=not regressions and compared > 0,
            detail=(
                f"{compared} policies compared; each serves strictly more "
                "within-SLA load protected than unprotected"
                if not regressions and compared > 0
                else "; ".join(regressions) or "no twin pairs to compare"
            ),
        ),
    ]


def run_pack(
    name: str,
    *,
    workers: int = 1,
    azure_trace: str | None = None,
) -> PackReport:
    """Run a named pack end-to-end and validate its invariants.

    The ``overload`` pack doubles its grid: every cell also runs as an
    unprotected twin (``overload=None``) under the identical flash crowd,
    feeding the goodput-uplift check.  The report's ``results`` carry the
    protected cells only; the twins exist to be compared against.
    """
    spec = pack_spec(name, azure_trace=azure_trace)
    cells = spec.cells()
    if name == "overload":
        twins = [dataclasses.replace(c, overload=None) for c in cells]
        everything = run_grid(cells + twins, workers=workers)
        results = everything[: len(cells)]
        unprotected = everything[len(cells):]
    else:
        results = run_grid(cells, workers=workers)
        unprotected = []
    checks = [
        _conservation_check(results + unprotected),
        _progress_check(results),
    ]
    if name == "gpu-swap":
        checks.extend(_swap_checks(results))
    if name == "overload":
        checks.extend(_overload_checks(spec, results, unprotected))
    return PackReport(pack=name, spec=spec, results=results, checks=checks)
